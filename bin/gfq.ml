(* gfq — command-line front end for the Graphflow reproduction.

   Subcommands: generate, stats, plan, run, spectrum, catalogue. Graphs come
   either from a file saved by [generate] (--graph) or from a named
   synthetic dataset (--dataset, --scale). *)

open Cmdliner
module Gf = Graphflow

let die msg =
  prerr_endline ("gfq: " ^ msg);
  exit 1

let load_graph graph_file dataset scale labels seed =
  let g =
    match (graph_file, dataset) with
    | Some path, _ -> (
        match Gf.Graph_io.load_result path with
        | Ok g -> g
        | Error e -> die (Gf.Graph_io.load_error_to_string e))
    | None, Some name -> (
        match Gf.Generators.dataset_name_of_string name with
        | Some d -> Gf.Generators.dataset ~scale d
        | None -> die (Printf.sprintf "unknown dataset %S" name))
    | None, None -> die "provide --graph FILE or --dataset NAME"
  in
  if labels > 1 then Gf.Graph.relabel g (Gf.Rng.create seed) ~num_vlabels:1 ~num_elabels:labels
  else g

(* Common options *)
let graph_file =
  Arg.(value & opt (some string) None & info [ "graph"; "g" ] ~docv:"FILE" ~doc:"Graph file.")

let dataset =
  Arg.(
    value
    & opt (some string) None
    & info [ "dataset"; "d" ] ~docv:"NAME"
        ~doc:"Synthetic dataset: amazon, epinions, google, berkstan, livejournal, twitter, human.")

let scale =
  Arg.(value & opt float 1.0 & info [ "scale" ] ~doc:"Dataset scale factor (default 1.0).")

let labels =
  Arg.(
    value & opt int 1
    & info [ "labels" ] ~doc:"Randomly assign this many edge labels (the paper's Q^J_i setup).")

let seed = Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Random seed for labeling.")

let kernel_arg =
  let kernel_conv =
    Arg.enum
      [ ("scalar", Gf.Sorted.Scalar); ("simd", Gf.Sorted.Simd); ("auto", Gf.Sorted.Auto) ]
  in
  Arg.(
    value
    & opt (some kernel_conv) None
    & info [ "kernel" ] ~docv:"KERNEL"
        ~doc:
          "Intersection kernel: $(b,scalar) (portable OCaml), $(b,simd) (vectorized C \
           stubs), or $(b,auto) (probe the CPU; the default). Overrides the GFQ_KERNEL \
           environment variable.")

let apply_kernel k = Option.iter Gf.Sorted.set_kernel_mode k

let query_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "query"; "q" ] ~docv:"PATTERN"
        ~doc:"Query pattern, e.g. 'a1->a2, a2->a3, a1->a3', or Q1..Q14 for the benchmark set.")

(* A parse error rendered with a caret under the offending offset. *)
let show_parse_error (e : Gf.Parse_error.t) =
  Printf.sprintf "parse error: %s\n  %s\n  %s^" e.Gf.Parse_error.message
    e.Gf.Parse_error.input
    (String.make (min e.Gf.Parse_error.pos (String.length e.Gf.Parse_error.input)) ' ')

let parse_query_result s =
  match
    if String.length s >= 2 && s.[0] = 'Q' then int_of_string_opt (String.sub s 1 (String.length s - 1))
    else None
  with
  | Some i -> (
      match Gf.Patterns.q i with
      | q -> Ok q
      | exception (Failure m | Invalid_argument m) -> Error m)
  | None -> (
      (* MATCH (...) patterns go through the Cypher frontend, everything
         else through the edge-list DSL. *)
      let upper = String.uppercase_ascii (String.trim s) in
      if String.length upper >= 5 && String.sub upper 0 5 = "MATCH" then
        match Gf.Cypher.parse_result s with
        | Ok (q, _) -> Ok q
        | Error e -> Error (show_parse_error e)
      else
        match Gf.Query_parser.parse_result s with
        | Ok q -> Ok q
        | Error e -> Error (show_parse_error e))

let parse_query s =
  match parse_query_result s with Ok q -> q | Error msg -> die msg

let generate_cmd =
  let out = Arg.(required & opt (some string) None & info [ "output"; "o" ] ~docv:"FILE" ~doc:"Output path.") in
  let dataset_pos = Arg.(required & pos 0 (some string) None & info [] ~docv:"DATASET") in
  let go dname scale labels seed out =
    let g = load_graph None (Some dname) scale labels seed in
    Gf.Graph_io.save g out;
    Format.printf "wrote %s: %a@." out Gf.Graph_stats.pp_summary (Gf.Graph_stats.summarize g)
  in
  Cmd.v (Cmd.info "generate" ~doc:"Generate a synthetic dataset and save it.")
    Term.(const go $ dataset_pos $ scale $ labels $ seed $ out)

let snapshot_cmd =
  let out =
    Arg.(
      required
      & opt (some string) None
      & info [ "output"; "o" ] ~docv:"FILE" ~doc:"Snapshot output path.")
  in
  let go graph_file dataset scale labels seed out =
    let g = load_graph graph_file dataset scale labels seed in
    let t0 = Unix.gettimeofday () in
    Gf.Graph_io.save_snapshot g out;
    let save_s = Unix.gettimeofday () -. t0 in
    let t1 = Unix.gettimeofday () in
    match Gf.Graph_io.load_snapshot_result out with
    | Error e -> die (Gf.Graph_io.load_error_to_string e)
    | Ok g2 ->
        let load_s = Unix.gettimeofday () -. t1 in
        let r = Gf.Graph.residency g2 in
        Format.printf
          "wrote %s: n=%d m=%d, %d bytes off-heap (%d-byte neighbour ids)@.save: %.3fs, \
           mmap load+verify: %.6fs@."
          out (Gf.Graph.num_vertices g2) (Gf.Graph.num_edges g2) r.Gf.Graph.offheap_bytes
          r.Gf.Graph.nbr_width save_s load_s
  in
  Cmd.v
    (Cmd.info "snapshot"
       ~doc:
         "Write a graph as an mmap-loadable binary snapshot and verify it loads. All \
          graph-reading commands auto-detect snapshots by their magic bytes.")
    Term.(const go $ graph_file $ dataset $ scale $ labels $ seed $ out)

let stats_cmd =
  let go graph_file dataset scale labels seed =
    let g = load_graph graph_file dataset scale labels seed in
    Format.printf "%a@." Gf.Graph_stats.pp_summary (Gf.Graph_stats.summarize g)
  in
  Cmd.v (Cmd.info "stats" ~doc:"Print structural statistics of a graph.")
    Term.(const go $ graph_file $ dataset $ scale $ labels $ seed)

let plan_cmd =
  let dot = Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz dot instead of text.") in
  let go graph_file dataset scale labels seed qs dot =
    let g = load_graph graph_file dataset scale labels seed in
    let db = Gf.Db.create g in
    let q = parse_query qs in
    if dot then
      let p, _ = Gf.Db.plan db q in
      print_string (Gf.Plan.to_dot p)
    else print_string (Gf.Db.explain db q)
  in
  Cmd.v (Cmd.info "plan" ~doc:"Show the optimizer's plan for a query.")
    Term.(const go $ graph_file $ dataset $ scale $ labels $ seed $ query_arg $ dot)

(* --- wire client: one line out, one line back --------------------------- *)

let dial_endpoint ep =
  let sockaddr =
    match ep with
    | Gf_server.Server.Unix_path path -> Unix.ADDR_UNIX path
    | Gf_server.Server.Tcp (h, p) ->
        let addr =
          try Unix.inet_addr_of_string h
          with Failure _ -> (Unix.gethostbyname h).Unix.h_addr_list.(0)
        in
        Unix.ADDR_INET (addr, p)
  in
  let fd = Unix.socket (Unix.domain_of_sockaddr sockaddr) Unix.SOCK_STREAM 0 in
  (match Unix.connect fd sockaddr with
  | () -> ()
  | exception Unix.Unix_error (e, _, _) ->
      die
        (Printf.sprintf "could not connect to %s: %s"
           (Gf_cluster.Topology.endpoint_to_string ep)
           (Unix.error_message e)));
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let ask line =
    output_string oc line;
    output_char oc '\n';
    flush oc;
    match input_line ic with
    | reply -> reply
    | exception End_of_file -> die "server closed the connection before replying"
  in
  (fd, ask)

(* The trace envelope is {"ok":true,"id":N,"trace":<JSON>} with the trace
   nested raw as the last field, so it can be stripped by position:
   everything between "trace": and the final brace. *)
let strip_trace_envelope reply =
  let marker = {|"trace":|} in
  let mlen = String.length marker and len = String.length reply in
  let rec find i =
    if i + mlen > len then None
    else if String.sub reply i mlen = marker then Some (i + mlen)
    else find (i + 1)
  in
  match find 0 with
  | Some start when len > start -> Some (String.sub reply start (len - start - 1))
  | _ -> None

let write_trace_file ~id ~path body =
  let oc = open_out path in
  output_string oc body;
  output_char oc '\n';
  close_out oc;
  Printf.printf "trace %d -> %s\n" id path

let run_cmd =
  let adaptive = Arg.(value & flag & info [ "adaptive" ] ~doc:"Adaptive QVO selection.") in
  let limit = Arg.(value & opt (some int) None & info [ "limit" ] ~doc:"Stop after N matches.") in
  let timeout_ms =
    Arg.(
      value
      & opt (some int) None
      & info [ "timeout-ms" ] ~docv:"MS"
          ~doc:"Wall-clock deadline; the run returns a truncated outcome when it trips.")
  in
  let max_rows =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-rows" ] ~docv:"N" ~doc:"Output-row cap (like --limit, reported as truncation).")
  in
  let max_intermediate =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-intermediate" ] ~docv:"N" ~doc:"Cap on intermediate tuples produced.")
  in
  let max_bytes =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-bytes" ] ~docv:"B"
          ~doc:"Cap on approximate bytes of materialized state (join tables, batches).")
  in
  let domains =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"N"
          ~doc:"Execute on N domains with the morsel-driven parallel executor.")
  in
  let explain_analyze =
    Arg.(
      value & flag
      & info [ "explain-analyze" ]
          ~doc:
            "Profile per-operator actuals and print them joined against the optimizer's \
             estimates (cardinality and cost q-errors per operator).")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the run (counters, outcome, per-operator rows) as one JSON object.")
  in
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:"After the run, print the Prometheus text exposition of the query metrics.")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Record a full span trace of the run (planner, executor, per-domain morsels, \
             per-operator summary) and write it as Chrome trace-event JSON — load the file \
             at ui.perfetto.dev or chrome://tracing.")
  in
  let trace_tree =
    Arg.(
      value & flag
      & info [ "trace-tree" ]
          ~doc:"Record a span trace and print it as an indented tree on stdout.")
  in
  let no_plan_cache =
    Arg.(
      value & flag
      & info [ "no-plan-cache" ]
          ~doc:
            "Plan from scratch instead of through a plan cache (a one-shot run plans once \
             either way; this mainly silences the gf_server_plan_cache_* metrics).")
  in
  let connect =
    Arg.(
      value
      & opt (some string) None
      & info [ "connect" ] ~docv:"ADDR"
          ~doc:
            "Run the query on a running gfq serve instead of locally: ADDR is unix:PATH or \
             tcp:HOST:PORT. Against a cluster coordinator with --trace-out, fetches the \
             stitched cross-process trace — coordinator attempts plus every worker that \
             served a shard, on their own process tracks — as one Chrome trace file.")
  in
  (* Remote mode: the serving process executes and traces; we just speak the
     wire protocol and, for --trace-out, pull the retained trace back out of
     its flight recorder. *)
  let run_remote ~addr ~qs ~timeout_ms ~max_output ~trace_out =
    let ep =
      match Gf_cluster.Topology.parse_endpoint addr with Ok e -> e | Error m -> die m
    in
    let fd, ask = dial_endpoint ep in
    let opts = Buffer.create 32 in
    Option.iter (fun ms -> Buffer.add_string opts (Printf.sprintf " timeout_ms=%d" ms)) timeout_ms;
    Option.iter (fun n -> Buffer.add_string opts (Printf.sprintf " max_rows=%d" n)) max_output;
    if trace_out <> None then Buffer.add_string opts " trace";
    let reply = ask (Printf.sprintf "run%s q=%s" (Buffer.contents opts) qs) in
    print_endline reply;
    (match trace_out with
    | None -> ()
    | Some path -> (
        match Gf_cluster.Proto.json_int reply "trace_id" with
        | None -> die "reply carries no trace_id (did the server refuse the run?)"
        | Some id -> (
            let treply = ask (Printf.sprintf "trace id=%d" id) in
            match strip_trace_envelope treply with
            | Some body -> write_trace_file ~id ~path body
            | None ->
                prerr_endline treply;
                exit 1)));
    try Unix.close fd with Unix.Unix_error _ -> ()
  in
  let go graph_file dataset scale labels seed qs kernel adaptive limit timeout_ms max_rows
      max_intermediate max_bytes domains explain_analyze json metrics trace_out trace_tree
      no_plan_cache connect =
    apply_kernel kernel;
    let remote_max_output =
      match (limit, max_rows) with
      | Some a, Some b -> Some (min a b)
      | (Some _ as a), None -> a
      | None, b -> b
    in
    match connect with
    | Some addr ->
        if explain_analyze || json || trace_tree then
          die "--connect supports plain runs (drop --explain-analyze/--json/--trace-tree)";
        run_remote ~addr ~qs ~timeout_ms ~max_output:remote_max_output ~trace_out
    | None ->
    let g = load_graph graph_file dataset scale labels seed in
    let plan_cache =
      if no_plan_cache then None else Some (Gf.Plan_cache.create ~capacity:64 ())
    in
    let db = Gf.Db.create ?plan_cache g in
    let q = parse_query qs in
    let max_output = remote_max_output in
    let budget =
      Gf.Governor.budget
        ?deadline_s:(Option.map (fun ms -> float_of_int ms /. 1000.) timeout_ms)
        ?max_output ?max_intermediate ?max_bytes ()
    in
    let trace =
      if trace_out <> None || trace_tree then Some (Gf.Trace.create ()) else None
    in
    if explain_analyze || json then begin
      if trace <> None then
        die "--trace-out/--trace-tree need a plain run (drop --explain-analyze/--json)";
      (* [--json] implies a profiled run so the envelope always carries the
         per-operator rows. *)
      let a = Gf.Db.explain_analyze ~adaptive ~domains ~budget db q in
      if json then print_endline (Gf.Db.analysis_to_json a)
      else print_string (Gf.Db.analysis_to_string a)
    end
    else begin
      let t0 = Unix.gettimeofday () in
      let c, outcome = Gf.Db.run_gov ~adaptive ~domains ~budget ?trace db q in
      let secs = Unix.gettimeofday () -. t0 in
      Format.printf "matches: %d@.outcome: %a@.time: %.3fs@.kernel: %s@.%a@."
        c.Gf.Counters.output Gf.Governor.pp_outcome outcome secs (Gf.Sorted.kernel_name ())
        Gf.Counters.pp c
    end;
    Option.iter
      (fun tr ->
        Option.iter
          (fun path ->
            let oc = open_out path in
            output_string oc (Gf.Trace.to_chrome_json tr);
            output_char oc '\n';
            close_out oc;
            Format.printf "trace: %d spans (%d dropped) -> %s@." (List.length (Gf.Trace.spans tr))
              (Gf.Trace.dropped tr) path)
          trace_out;
        if trace_tree then print_string (Gf.Trace.render tr))
      trace;
    if metrics then print_string (Gf.Db.metrics_exposition ())
  in
  Cmd.v (Cmd.info "run" ~doc:"Optimize and execute a query under an optional budget.")
    Term.(
      const go $ graph_file $ dataset $ scale $ labels $ seed $ query_arg $ kernel_arg
      $ adaptive $ limit $ timeout_ms $ max_rows $ max_intermediate $ max_bytes $ domains
      $ explain_analyze $ json $ metrics $ trace_out $ trace_tree $ no_plan_cache $ connect)

let spectrum_cmd =
  let go graph_file dataset scale labels seed qs =
    let g = load_graph graph_file dataset scale labels seed in
    let db = Gf.Db.create g in
    let q = parse_query qs in
    let s = Gf.Spectrum.run g q in
    let picked, _ = Gf.Db.plan db q in
    print_string (Gf.Spectrum.summary s ~picked_signature:(Gf.Plan.signature picked))
  in
  Cmd.v (Cmd.info "spectrum" ~doc:"Run every plan in the query's plan spectrum.")
    Term.(const go $ graph_file $ dataset $ scale $ labels $ seed $ query_arg)

let catalogue_cmd =
  let h = Arg.(value & opt int 3 & info [ "H"; "max-pattern" ] ~doc:"Max pattern size (paper's h).") in
  let z = Arg.(value & opt int 1000 & info [ "z"; "samples" ] ~doc:"Sample size (paper's z).") in
  let save =
    Arg.(
      value
      & opt (some string) None
      & info [ "save" ] ~docv:"FILE"
          ~doc:"Persist the built catalogue (crash-safe: temp file + rename).")
  in
  let load =
    Arg.(
      value
      & opt (some string) None
      & info [ "load" ] ~docv:"FILE"
          ~doc:"Load a previously saved catalogue instead of building one.")
  in
  let go graph_file dataset scale labels seed h z save load =
    let g = load_graph graph_file dataset scale labels seed in
    match load with
    | Some path -> (
        match Gf.Catalog.load_result g path with
        | Ok cat ->
            Format.printf "catalogue: %d entries (h=%d z=%d) loaded from %s@."
              (Gf.Catalog.num_entries cat) (Gf.Catalog.h cat) (Gf.Catalog.z cat) path
        | Error e -> die (Gf.Catalog.load_error_to_string e))
    | None ->
        let cat = Gf.Catalog.create ~h ~z g in
        let t0 = Unix.gettimeofday () in
        let n = Gf.Catalog.build_exhaustive cat in
        let secs = Unix.gettimeofday () -. t0 in
        Format.printf "catalogue: %d entries (h=%d z=%d) built in %.2fs@." n h z secs;
        Option.iter
          (fun path ->
            Gf.Catalog.save cat path;
            Format.printf "saved to %s@." path)
          save
  in
  Cmd.v (Cmd.info "catalogue" ~doc:"Build, save, or load the exhaustive subgraph catalogue.")
    Term.(const go $ graph_file $ dataset $ scale $ labels $ seed $ h $ z $ save $ load)

(* --- serve: the resilient query service over a socket ------------------ *)

let endpoint_arg_of socket port host =
  match (socket, port) with
  | Some path, None -> Gf_server.Server.Unix_path path
  | None, Some p -> Gf_server.Server.Tcp (host, p)
  | Some _, Some _ -> die "provide --socket or --port, not both"
  | None, None -> die "provide --socket PATH or --port N"

let endpoint_to_string = function
  | Gf_server.Server.Unix_path p -> "unix:" ^ p
  | Gf_server.Server.Tcp (h, p) -> Printf.sprintf "tcp:%s:%d" h p

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")

let port_arg =
  Arg.(value & opt (some int) None & info [ "port" ] ~docv:"N" ~doc:"TCP port.")

let host_arg =
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST" ~doc:"TCP host.")

let serve_cmd =
  let workers =
    Arg.(value & opt int 4 & info [ "workers" ] ~docv:"N" ~doc:"Worker threads.")
  in
  let queue =
    Arg.(
      value & opt int 64
      & info [ "queue" ] ~docv:"N"
          ~doc:"Admission-queue capacity; excess requests are shed with a structured rejection.")
  in
  let domains =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"N"
          ~doc:"First-rung parallelism of the retry ladder (<= 1 skips the parallel rung).")
  in
  let timeout_ms =
    Arg.(
      value
      & opt (some int) None
      & info [ "timeout-ms" ] ~docv:"MS" ~doc:"Default per-request deadline.")
  in
  let max_rows =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-rows" ] ~docv:"N" ~doc:"Default output-row cap per request.")
  in
  let max_intermediate =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-intermediate" ] ~docv:"N" ~doc:"Default intermediate-tuple cap per request.")
  in
  let degraded_timeout_ms =
    Arg.(
      value & opt int 2000
      & info [ "degraded-timeout-ms" ] ~docv:"MS"
          ~doc:"Deadline of the final (reduced-budget) ladder rung.")
  in
  let backoff_ms =
    Arg.(
      value & opt int 50
      & info [ "backoff-ms" ] ~docv:"MS" ~doc:"Base retry backoff (doubles per attempt, jittered).")
  in
  let backoff_cap_ms =
    Arg.(value & opt int 1000 & info [ "backoff-cap-ms" ] ~docv:"MS" ~doc:"Backoff ceiling.")
  in
  let breaker_window =
    Arg.(value & opt int 32 & info [ "breaker-window" ] ~docv:"N" ~doc:"Breaker sliding window.")
  in
  let breaker_min =
    Arg.(
      value & opt int 8
      & info [ "breaker-min" ] ~docv:"N" ~doc:"Minimum samples before the breaker may open.")
  in
  let breaker_threshold =
    Arg.(
      value & opt float 0.5
      & info [ "breaker-threshold" ] ~docv:"F" ~doc:"Failure fraction that opens the breaker.")
  in
  let breaker_cooldown_ms =
    Arg.(
      value & opt int 5000
      & info [ "breaker-cooldown-ms" ] ~docv:"MS"
          ~doc:"Time the breaker stays open before half-opening on a probe.")
  in
  let fault_seed =
    Arg.(
      value
      & opt (some int) None
      & info [ "fault-seed" ] ~docv:"SEED"
          ~env:(Cmd.Env.info "GFQ_FAULT_SEED")
          ~doc:"Chaos source: deterministically inject first-attempt faults into ~1/4 of requests.")
  in
  let data_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "data-dir" ] ~docv:"DIR"
          ~doc:
            "Durable store directory (checksummed snapshot + write-ahead log). Enables the \
             addedge/deledge/addvertex/delvertex/checkpoint wire commands; on restart the \
             graph is recovered from the newest valid snapshot plus WAL replay. \
             --graph/--dataset only seed the genesis graph the first time the directory is \
             used (default: an empty graph).")
  in
  let merge_threshold =
    Arg.(
      value
      & opt int Gf_wal.Store.default_config.Gf_wal.Store.merge_threshold
      & info [ "merge-threshold" ] ~docv:"N"
          ~doc:"Merge the delta overlay into a fresh CSR after N pending operations (0 = only at checkpoint).")
  in
  let segment_bytes =
    Arg.(
      value
      & opt int Gf_wal.Store.default_config.Gf_wal.Store.segment_bytes
      & info [ "segment-bytes" ] ~docv:"B" ~doc:"WAL segment rotation threshold in bytes.")
  in
  let sync_every_append =
    Arg.(
      value & flag
      & info [ "sync-every-append" ]
          ~doc:"fsync after every WAL record instead of group commit (slower, strictest durability).")
  in
  let snapshots_kept =
    Arg.(
      value
      & opt int Gf_wal.Store.default_config.Gf_wal.Store.snapshots_kept
      & info [ "snapshots-kept" ] ~docv:"N"
          ~doc:"Snapshot generations retained as fallback against bit rot.")
  in
  let plan_cache_cap =
    Arg.(
      value
      & opt int Gf.Plan_cache.default_capacity
      & info [ "plan-cache" ] ~docv:"N"
          ~doc:
            "Plan-cache capacity: recurring queries are served by cached plans (keyed by \
             canonical pattern + graph version) and converge on true-cost plans via \
             profiled-execution feedback. 0 disables the cache.")
  in
  let worker_node =
    Arg.(
      value
      & opt (some string) None
      & info [ "worker" ] ~docv:"NODE"
          ~doc:
            "Cluster worker role: answer hello handshakes and shard requests (ranged slices \
             of a query's driving scan) on top of the normal wire protocol. NODE is this \
             worker's id in handshakes and shard replies.")
  in
  let coordinator =
    Arg.(
      value
      & opt (some string) None
      & info [ "coordinator" ] ~docv:"FILE"
          ~doc:
            "Cluster coordinator role: route each run request as shard requests to the \
             workers listed in FILE (lines of 'shard <id> <endpoint> [<replica>...]'), with \
             per-shard circuit breakers, health-aware replica failover, and request \
             hedging. Needs no local graph.")
  in
  let attach_snap =
    Arg.(
      value
      & opt (some string) None
      & info [ "attach-snapshot" ] ~docv:"DIR"
          ~doc:
            "Serve the newest valid snapshot in a store directory read-only — no WAL \
             replay, no write lock, instant start. The worker-role fast path: many workers \
             can attach the same store.")
  in
  let hedge_ms =
    Arg.(
      value & opt int 250
      & info [ "hedge-ms" ] ~docv:"MS"
          ~doc:
            "Coordinator: hedge a shard request to the next replica after MS without an \
             answer (0 disables hedging).")
  in
  let rpc_timeout_ms =
    Arg.(
      value & opt int 10_000
      & info [ "rpc-timeout-ms" ] ~docv:"MS" ~doc:"Coordinator: per-attempt shard RPC deadline.")
  in
  let cluster_retries =
    Arg.(
      value & opt int 2
      & info [ "cluster-retries" ] ~docv:"N"
          ~doc:"Coordinator: extra endpoint attempts per shard after the first fails.")
  in
  let metrics_port =
    Arg.(
      value
      & opt (some int) None
      & info [ "metrics-port" ] ~docv:"PORT"
          ~doc:
            "Expose GET /metrics (Prometheus text exposition of every gf_* series) and GET \
             /healthz on this HTTP port, on any role — plain server, worker, or \
             coordinator. 0 picks a free port (printed at startup).")
  in
  let go graph_file dataset scale labels seed kernel socket port host workers queue domains
      timeout_ms max_rows max_intermediate degraded_timeout_ms backoff_ms backoff_cap_ms
      breaker_window breaker_min breaker_threshold breaker_cooldown_ms fault_seed data_dir
      merge_threshold segment_bytes sync_every_append snapshots_kept plan_cache_cap
      worker_node coordinator attach_snap hedge_ms rpc_timeout_ms cluster_retries
      metrics_port =
    apply_kernel kernel;
    let endpoint = endpoint_arg_of socket port host in
    (* The exposition listener serves the process-wide registry, so one
       endpoint covers whatever roles this process plays. *)
    let exposer =
      Option.map
        (fun p ->
          match
            Gf_obs.Expose.start ~port:p
              [
                ( "/metrics",
                  fun () -> ("text/plain; version=0.0.4", Gf.Db.metrics_exposition ()) );
                ("/healthz", fun () -> ("text/plain", "ok\n"));
              ]
          with
          | Ok ex ->
              Format.printf "gfq serve: metrics on http://127.0.0.1:%d/metrics@."
                (Gf_obs.Expose.port ex);
              Format.print_flush ();
              ex
          | Error m -> die ("metrics-port: " ^ m))
        metrics_port
    in
    let stop_exposer () = Option.iter Gf_obs.Expose.stop exposer in
    let breaker =
      {
        Gf_server.Breaker.window = breaker_window;
        min_samples = breaker_min;
        failure_threshold = breaker_threshold;
        cooldown_s = float_of_int breaker_cooldown_ms /. 1000.;
      }
    in
    match coordinator with
    | Some conf_file ->
        (* Coordinator role: no local graph — the hook answers every
           data-path line from the cluster; only ping/metrics/shutdown fall
           through to the (empty) hosting service. *)
        let topo =
          match Gf_cluster.Topology.load conf_file with
          | Ok t -> t
          | Error m -> die ("coordinator: " ^ m)
        in
        let config =
          {
            Gf_cluster.Coordinator.default_config with
            rpc_timeout_s = float_of_int rpc_timeout_ms /. 1000.;
            retries = cluster_retries;
            hedge_after_s =
              (if hedge_ms <= 0 then None else Some (float_of_int hedge_ms /. 1000.));
            breaker;
          }
        in
        let coord = Gf_cluster.Coordinator.create ~config topo in
        let db =
          Gf.Db.create (Gf.Graph.build ~num_vlabels:1 ~num_elabels:1 ~vlabel:[||] ~edges:[||])
        in
        let service = Gf_server.Service.create db in
        Gf_server.Server.serve
          ~hook:(Gf_cluster.Coordinator.hook coord)
          ~on_ready:(fun ep ->
            Format.printf
              "gfq serve: coordinator listening on %s (%d shards, hedge=%dms \
               rpc-timeout=%dms retries=%d)@."
              (endpoint_to_string ep)
              (Gf_cluster.Topology.num_shards topo)
              hedge_ms rpc_timeout_ms cluster_retries;
            Format.print_flush ())
          service endpoint;
        Gf_cluster.Coordinator.stop coord;
        stop_exposer ();
        Format.printf "gfq serve: drained, exiting@."
    | None ->
    if attach_snap <> None && data_dir <> None then
      die "provide --attach-snapshot or --data-dir, not both";
    let attached =
      Option.map
        (fun dir ->
          match Gf_wal.Store.attach_snapshot dir with
          | Ok (file, wv, g) ->
              Format.printf "gfq serve: attached snapshot %s v%d (read-only, n=%d m=%d)@."
                file wv (Gf.Graph.num_vertices g) (Gf.Graph.num_edges g);
              g
          | Error m -> die ("attach-snapshot: " ^ m))
        attach_snap
    in
    let g =
      match attached with
      | Some g -> g
      | None -> (
          match (data_dir, graph_file, dataset) with
          | Some _, None, None ->
              (* Durable store with no genesis source: start empty (or recover). *)
              Gf.Graph.build ~num_vlabels:1 ~num_elabels:1 ~vlabel:[||] ~edges:[||]
          | _ -> load_graph graph_file dataset scale labels seed)
    in
    let store =
      Option.map
        (fun dir ->
          let config =
            {
              Gf_wal.Store.segment_bytes;
              sync_every_append;
              merge_threshold;
              snapshots_kept;
            }
          in
          match Gf_wal.Store.open_store ~config ~init:g dir with
          | Error e -> die ("store: " ^ Gf_wal.Store.open_error_to_string e)
          | Ok st ->
              let r = Gf_wal.Store.recovery_info st in
              List.iter (fun w -> Format.printf "gfq serve: store warning: %s@." w) r.Gf_wal.Store.warnings;
              Format.printf "gfq serve: store %s: version %d (%s, %d wal records replayed)@."
                dir (Gf_wal.Store.version st)
                (match r.Gf_wal.Store.snapshot with
                | Some (file, v) -> Printf.sprintf "snapshot %s v%d" file v
                | None -> "no snapshot")
                r.Gf_wal.Store.replayed;
              st)
        data_dir
    in
    let plan_cache =
      if plan_cache_cap <= 0 then None
      else Some (Gf.Plan_cache.create ~capacity:plan_cache_cap ())
    in
    let db =
      Gf.Db.create ?plan_cache
        (match store with Some st -> Gf_wal.Store.graph st | None -> g)
    in
    let ladder =
      {
        Gf_server.Ladder.domains;
        budget =
          Gf.Governor.budget
            ?deadline_s:(Option.map (fun ms -> float_of_int ms /. 1000.) timeout_ms)
            ?max_output:max_rows ?max_intermediate ();
        degraded_budget =
          Gf.Governor.budget
            ~deadline_s:(float_of_int degraded_timeout_ms /. 1000.)
            ~max_output:(Option.value max_rows ~default:10_000)
            ~max_intermediate:(Option.value max_intermediate ~default:1_000_000)
            ();
        backoff_base_s = float_of_int backoff_ms /. 1000.;
        backoff_cap_s = float_of_int backoff_cap_ms /. 1000.;
      }
    in
    let config =
      { Gf_server.Service.default_config with queue_capacity = queue; workers; ladder; breaker; fault_seed; seed }
    in
    let service = Gf_server.Service.create ~config db in
    Option.iter (Gf_server.Service.attach_store service) store;
    let hook =
      match worker_node with
      | None -> None
      | Some node ->
          if Gf_cluster.Cfault.arm_from_env () then
            Format.printf "gfq serve: cluster fault armed from GFQ_CLUSTER_FAULT@.";
          let served =
            match store with Some st -> Gf_wal.Store.graph st | None -> g
          in
          let w =
            Gf_cluster.Worker.create ~node
              ~n:(Gf.Graph.num_vertices served)
              ~m:(Gf.Graph.num_edges served)
              service
          in
          Some (Gf_cluster.Worker.hook w)
    in
    Gf_server.Server.serve ?hook
      ~on_ready:(fun ep ->
        Format.printf
          "gfq serve: listening on %s (workers=%d queue=%d domains=%d plan-cache=%d%s%s%s)@."
          (endpoint_to_string ep) workers queue domains (max 0 plan_cache_cap)
          (match fault_seed with
          | Some s -> Printf.sprintf " fault-seed=%d" s
          | None -> "")
          (match data_dir with Some d -> " data-dir=" ^ d | None -> "")
          (match worker_node with Some n -> " worker=" ^ n | None -> "");
        Format.print_flush ())
      service endpoint;
    Option.iter Gf_wal.Store.close store;
    stop_exposer ();
    Format.printf "gfq serve: drained, exiting@."
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve queries over a socket: bounded admission queue, retry-with-degradation \
          ladder, circuit breaker, graceful drain on shutdown. With --data-dir, durable \
          graph mutations (write-ahead logged, crash-recoverable). With --worker or \
          --coordinator, a node of a fault-tolerant sharded cluster.")
    Term.(
      const go $ graph_file $ dataset $ scale $ labels $ seed $ kernel_arg $ socket_arg
      $ port_arg $ host_arg $ workers $ queue $ domains $ timeout_ms $ max_rows
      $ max_intermediate $ degraded_timeout_ms $ backoff_ms $ backoff_cap_ms
      $ breaker_window $ breaker_min $ breaker_threshold $ breaker_cooldown_ms $ fault_seed
      $ data_dir $ merge_threshold $ segment_bytes $ sync_every_append $ snapshots_kept
      $ plan_cache_cap $ worker_node $ coordinator $ attach_snap $ hedge_ms $ rpc_timeout_ms
      $ cluster_retries $ metrics_port)

(* --- soak: a concurrent client driver for CI and load checks ----------- *)

(* Multi-process cluster torture: spawn real worker and coordinator
   processes (this very binary) on unix sockets in a temp dir, drive the
   coordinator, and check that every reply is honestly classified even
   while a worker kill-9s itself between shard dispatch and reply. *)
let cluster_soak spec ~dataset ~scale ~clients ~requests ~soak_seed ~connect_timeout_s
    ~replicas ~kill_worker ~crash =
  let n_coord, n_workers =
    match String.split_on_char 'x' spec with
    | [ c; w ] -> (
        match (int_of_string_opt c, int_of_string_opt w) with
        | Some c, Some w when c >= 1 && w >= 1 -> (c, w)
        | _ -> die "soak: --topology expects CxW, e.g. 1x4")
    | _ -> die "soak: --topology expects CxW, e.g. 1x4"
  in
  if n_coord <> 1 then die "soak: only one coordinator is supported (use 1xW)";
  let dir = Filename.temp_file "gfq-cluster" "" in
  Unix.unlink dir;
  Unix.mkdir dir 0o700;
  Printf.printf "soak: cluster dir %s\n%!" dir;
  (* Genesis graph -> read-only snapshot every worker attaches. *)
  let dname = Option.value dataset ~default:"amazon" in
  let g = load_graph None (Some dname) scale 1 7 in
  let store_dir = Filename.concat dir "store" in
  Unix.mkdir store_dir 0o700;
  Gf.Graph_io.save_snapshot g (Filename.concat store_dir "snap.0000000000000001.gfq");
  let triangle = "a1->a2, a2->a3, a1->a3" in
  let square = "a1->a2, a2->a3, a3->a4, a1->a4" in
  (* Ground truth: a completed cluster reply must carry exactly this count —
     anything less is a silent undercount and fails the soak. *)
  let expected = Gf.Db.count (Gf.Db.create g) (parse_query triangle) in
  let wsock i = Filename.concat dir (Printf.sprintf "w%d.sock" i) in
  let csock = Filename.concat dir "coord.sock" in
  let base_env =
    Array.of_list
      (List.filter
         (fun kv -> not (String.length kv >= 18 && String.sub kv 0 18 = "GFQ_CLUSTER_FAULT="))
         (Array.to_list (Unix.environment ())))
  in
  let spawn argv ~log ~fault =
    let env =
      match fault with
      | None -> base_env
      | Some f -> Array.append base_env [| "GFQ_CLUSTER_FAULT=" ^ f |]
    in
    let fd = Unix.openfile log [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644 in
    let pid = Unix.create_process_env Sys.executable_name argv env Unix.stdin fd fd in
    Unix.close fd;
    pid
  in
  let worker_argv i =
    [|
      Sys.executable_name; "serve"; "--worker"; Printf.sprintf "w%d" i;
      "--attach-snapshot"; store_dir; "--socket"; wsock i; "--workers"; "2";
    |]
  in
  let spawn_worker ?fault i =
    spawn (worker_argv i) ~log:(Filename.concat dir (Printf.sprintf "w%d.log" i)) ~fault
  in
  (* In crash mode worker 0 self-SIGKILLs on its 6th shard dispatch: the
     kill lands mid-query, between receiving the morsel and replying. *)
  let pids =
    Array.init n_workers (fun i ->
        let fault = if crash && i = 0 then Some "worker-kill:6" else None in
        spawn_worker ?fault i)
  in
  let conf = Filename.concat dir "workers.conf" in
  let oc = open_out conf in
  let reps = max 1 (min replicas n_workers) in
  for i = 0 to n_workers - 1 do
    output_string oc (Printf.sprintf "shard %d" i);
    for r = 0 to reps - 1 do
      output_string oc (Printf.sprintf " unix:%s" (wsock ((i + r) mod n_workers)))
    done;
    output_char oc '\n'
  done;
  close_out oc;
  let coord_pid =
    spawn
      [|
        Sys.executable_name; "serve"; "--coordinator"; conf; "--socket"; csock;
        "--hedge-ms"; "150"; "--rpc-timeout-ms"; "5000"; "--cluster-retries"; "2";
      |]
      ~log:(Filename.concat dir "coord.log") ~fault:None
  in
  let connect_to ?(timeout_s = connect_timeout_s) path =
    let deadline = Unix.gettimeofday () +. timeout_s in
    let rec go () =
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      match Unix.connect fd (Unix.ADDR_UNIX path) with
      | () ->
          Unix.setsockopt_float fd Unix.SO_RCVTIMEO 30.0;
          Unix.setsockopt_float fd Unix.SO_SNDTIMEO 30.0;
          fd
      | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          if Unix.gettimeofday () > deadline then
            die (Printf.sprintf "soak: could not connect to %s" path);
          Unix.sleepf 0.1;
          go ()
    in
    go ()
  in
  let oneshot ?timeout_s path line =
    let fd = connect_to ?timeout_s path in
    let ic = Unix.in_channel_of_descr fd in
    let oc = Unix.out_channel_of_descr fd in
    output_string oc (line ^ "\n");
    flush oc;
    let r = try Some (input_line ic) with End_of_file | Sys_error _ -> None in
    (try Unix.close fd with Unix.Unix_error _ -> ());
    r
  in
  (* Wait until every node answers a ping before opening fire. *)
  for i = 0 to n_workers - 1 do
    ignore (oneshot (wsock i) "ping")
  done;
  ignore (oneshot csock "ping");
  (* Supervisor: restart any worker that dies (the armed one, or the one we
     kill from outside) — restarts attach the same snapshot, fault disarmed. *)
  let restarts = ref 0 in
  let stop_sup = ref false in
  let sup_mu = Mutex.create () in
  let supervisor =
    Thread.create
      (fun () ->
        while not !stop_sup do
          Mutex.lock sup_mu;
          Array.iteri
            (fun i pid ->
              match Unix.waitpid [ Unix.WNOHANG ] pid with
              | 0, _ -> ()
              | _, _ ->
                  incr restarts;
                  Printf.printf "soak: worker %d (pid %d) died; restarting\n%!" i pid;
                  pids.(i) <- spawn_worker i
              | exception Unix.Unix_error _ -> ())
            pids;
          Mutex.unlock sup_mu;
          Thread.delay 0.1
        done)
      ()
  in
  let killer =
    Option.map
      (fun i ->
        if i < 0 || i >= n_workers then die "soak: --kill index out of range";
        Thread.create
          (fun () ->
            Thread.delay 1.0;
            Mutex.lock sup_mu;
            let pid = pids.(i) in
            Mutex.unlock sup_mu;
            Printf.printf "soak: kill -9 worker %d (pid %d)\n%!" i pid;
            try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ())
          ())
      (match (kill_worker, crash) with
      | Some i, _ -> Some i
      | None, true when n_workers > 1 -> Some 1
      | None, _ -> None)
  in
  let has_sub hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
    nn = 0 || at 0
  in
  let bad = ref 0 in
  let completed = ref 0 and truncated = ref 0 and partial = ref 0 in
  let failed = ref 0 and refused = ref 0 in
  let tally = Mutex.create () in
  let count r = Mutex.lock tally; incr r; Mutex.unlock tally in
  let flag_bad why line =
    Mutex.lock tally;
    incr bad;
    Mutex.unlock tally;
    Printf.eprintf "soak: BAD (%s): %s\n%!" why line
  in
  let exact_needle = Printf.sprintf "\"matches\":%d,\"shards\"" expected in
  let validate kind line =
    if has_sub line "\"outcome\":\"completed\"" then
      if kind = `Exact && not (has_sub line exact_needle) then
        flag_bad "completed reply with silent undercount" line
      else count completed
    else if has_sub line "\"outcome\":\"truncated" then count truncated
    else if has_sub line "\"outcome\":\"partial\"" then
      if has_sub line "\"incomplete_shards\":[]" then
        flag_bad "partial reply names no missing shard" line
      else count partial
    else if has_sub line "\"outcome\":\"failed\"" then count failed
    else if kind = `Stats then
      if has_sub line "\"type\":\"cluster_stats\"" then count completed
      else flag_bad "stats" line
    else if has_sub line "\"ok\":false" then
      if kind = `Mutate then count refused else flag_bad "unexpected refusal" line
    else flag_bad "unclassified reply" line
  in
  let client ci =
    let fd = connect_to csock in
    let ic = Unix.in_channel_of_descr fd in
    let oc = Unix.out_channel_of_descr fd in
    let rng = Gf.Rng.create (soak_seed lxor (ci * 0x9e3779b9)) in
    (try
       for _ = 1 to requests do
         let line, kind =
           match Gf.Rng.int rng 10 with
           | 0 | 1 | 2 | 3 | 4 | 5 -> ("run q=" ^ triangle, `Exact)
           | 6 -> ("run rows=1 max_rows=5 q=" ^ square, `Any)
           | 7 -> ("stats", `Stats)
           | 8 ->
               (Printf.sprintf "addedge %d %d" (Gf.Rng.int rng 64) (Gf.Rng.int rng 64), `Mutate)
           | _ -> ("run q=" ^ square, `Any)
         in
         output_string oc (line ^ "\n");
         flush oc;
         match input_line ic with
         | reply -> validate kind reply
         | exception End_of_file -> flag_bad "connection closed mid-session" line
       done
     with Sys_error _ | Unix.Unix_error _ -> flag_bad "client i/o error (hung?)" "");
    try Unix.close fd with Unix.Unix_error _ -> ()
  in
  let threads = List.init clients (fun i -> Thread.create client i) in
  List.iter Thread.join threads;
  Option.iter Thread.join killer;
  (* Scrape coordinator stats and metrics before teardown. *)
  let scrape_int s needle =
    (* First occurrence of [needle] followed by digits (HELP/TYPE lines
       mention counter names without a value — skip those). *)
    let rec find i =
      if i + String.length needle > String.length s then None
      else if String.sub s i (String.length needle) = needle then begin
        let st = i + String.length needle in
        let j = ref st in
        while !j < String.length s && s.[!j] >= '0' && s.[!j] <= '9' do incr j done;
        if !j = st then find (i + 1) else Some (int_of_string (String.sub s st (!j - st)))
      end
      else find (i + 1)
    in
    find 0
  in
  let failovers =
    match oneshot csock "stats" with
    | None -> 0
    | Some s -> Option.value (scrape_int s "\"failovers\":") ~default:0
  in
  let failovers_metric =
    match oneshot csock "metrics" with
    | None -> 0
    | Some s -> Option.value (scrape_int s "gf_cluster_failovers_total ") ~default:0
  in
  Printf.printf "soak: gf_cluster_failovers_total=%d\n%!" failovers_metric;
  stop_sup := true;
  Thread.join supervisor;
  ignore (oneshot csock "shutdown");
  for i = 0 to n_workers - 1 do
    ignore (oneshot ~timeout_s:2.0 (wsock i) "shutdown")
  done;
  ignore (Unix.waitpid [] coord_pid);
  Array.iter (fun pid -> try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()) pids;
  Printf.printf
    "soak --topology 1x%d: %d clients x %d requests: completed=%d truncated=%d partial=%d \
     failed=%d refused=%d malformed=%d failovers=%d restarts=%d (expected matches=%d)\n"
    n_workers clients requests !completed !truncated !partial !failed !refused !bad failovers
    !restarts expected;
  let tortured = crash || kill_worker <> None in
  if tortured && min failovers failovers_metric = 0 then begin
    Printf.eprintf "soak: FAIL: a worker died but no shard failed over to a replica\n";
    exit 1
  end;
  if !completed = 0 then begin
    Printf.eprintf "soak: FAIL: no request completed\n";
    exit 1
  end;
  exit (if !bad > 0 then 1 else 0)

let soak_cmd =
  let clients =
    Arg.(value & opt int 4 & info [ "clients" ] ~docv:"N" ~doc:"Concurrent client connections.")
  in
  let requests =
    Arg.(value & opt int 25 & info [ "requests" ] ~docv:"N" ~doc:"Requests per client.")
  in
  let soak_seed =
    Arg.(value & opt int 11 & info [ "seed" ] ~docv:"SEED" ~doc:"Request-mix seed.")
  in
  let send_shutdown =
    Arg.(
      value & flag
      & info [ "shutdown" ] ~doc:"Send a shutdown request after the clients finish.")
  in
  let connect_timeout_s =
    Arg.(
      value & opt float 15.0
      & info [ "connect-timeout" ] ~docv:"S" ~doc:"Give up connecting after this long.")
  in
  let mutate_pct =
    Arg.(
      value & opt int 0
      & info [ "mutate" ] ~docv:"PCT"
          ~doc:
            "Make PCT percent of each client's requests graph mutations \
             (addedge/deledge/addvertex/delvertex/checkpoint) instead of queries — needs a \
             server running with --data-dir.")
  in
  let crash =
    Arg.(
      value & flag
      & info [ "crash" ]
          ~doc:
            "Crash-torture mode: no server needed. Fork a durable-store writer, kill -9 it \
             at each WAL/checkpoint fault point across a seed matrix, recover, and verify \
             the store came back as exactly the acknowledged prefix. Exits nonzero on any \
             lost or phantom write.")
  in
  let crash_seeds =
    Arg.(
      value & opt int 8
      & info [ "crash-seeds" ] ~docv:"N" ~doc:"Seeds per fault point in --crash mode.")
  in
  let topology =
    Arg.(
      value
      & opt (some string) None
      & info [ "topology" ] ~docv:"CxW"
          ~doc:
            "Cluster soak: spawn C coordinators (only 1 supported) and W worker processes \
             on unix sockets in a temp dir, wire them with replicated shards, and drive the \
             coordinator with the client mix. Every reply must be classified — completed \
             (with the exact full match count), truncated, or partial with its missing \
             shards named; anything else fails the soak. With --crash, one worker kill-9s \
             itself between shard dispatch and reply and is restarted, and the run asserts \
             at least one replica failover.")
  in
  let replicas =
    Arg.(
      value & opt int 2
      & info [ "replicas" ] ~docv:"N"
          ~doc:"Endpoints per shard in --topology mode (primary + N-1 replicas).")
  in
  let kill_worker =
    Arg.(
      value
      & opt (some int) None
      & info [ "kill" ] ~docv:"I"
          ~doc:"In --topology mode: kill -9 worker I from outside mid-soak (it restarts).")
  in
  let go socket port host clients requests soak_seed send_shutdown connect_timeout_s
      mutate_pct crash crash_seeds topology dataset scale replicas kill_worker =
    match topology with
    | Some spec -> cluster_soak spec ~dataset ~scale ~clients ~requests ~soak_seed
                     ~connect_timeout_s ~replicas ~kill_worker ~crash
    | None ->
    if crash then begin
      (* Fork-based: must run before any thread is spawned. *)
      let points =
        [
          Gf_wal.Fault.Wal_mid_record;
          Gf_wal.Fault.Wal_pre_fsync;
          Gf_wal.Fault.Wal_mid_rotation;
          Gf_wal.Fault.Checkpoint_mid_rename;
        ]
      in
      let rounds = ref 0 and failures = ref 0 in
      for i = 0 to crash_seeds - 1 do
        let seed = soak_seed + (i * 131) in
        List.iteri
          (fun pi p ->
            incr rounds;
            (* Rare points (rotation, checkpoint) fire a handful of times per
               run; frequent ones every append. Scale the armed hit count so
               the crash usually lands mid-run. *)
            let after =
              match p with
              | Gf_wal.Fault.Wal_mid_record | Gf_wal.Fault.Wal_pre_fsync ->
                  1 + ((seed + (pi * 17)) mod 60)
              | Gf_wal.Fault.Wal_mid_rotation | Gf_wal.Fault.Checkpoint_mid_rename ->
                  1 + ((seed + pi) mod 3)
            in
            let cfg = { (Gf_wal.Torture.default ~seed) with crash = Some (p, after) } in
            match Gf_wal.Torture.run cfg with
            | Ok o ->
                Printf.printf "crash %-22s seed=%-4d after=%-2d %s\n%!"
                  (Gf_wal.Fault.point_to_string p) seed after (Gf_wal.Torture.pp_outcome o)
            | Error m ->
                incr failures;
                Printf.printf "crash %-22s seed=%-4d after=%-2d FAIL: %s\n%!"
                  (Gf_wal.Fault.point_to_string p) seed after m)
          points
      done;
      Printf.printf "soak --crash: %d rounds, %d failures\n" !rounds !failures;
      exit (if !failures > 0 then 1 else 0)
    end;
    let endpoint = endpoint_arg_of socket port host in
    let sockaddr =
      match endpoint with
      | Gf_server.Server.Unix_path path -> Unix.ADDR_UNIX path
      | Gf_server.Server.Tcp (h, p) ->
          let addr =
            try Unix.inet_addr_of_string h
            with Failure _ -> (Unix.gethostbyname h).Unix.h_addr_list.(0)
          in
          Unix.ADDR_INET (addr, p)
    in
    let connect () =
      let deadline = Unix.gettimeofday () +. connect_timeout_s in
      let rec go () =
        let fd = Unix.socket (Unix.domain_of_sockaddr sockaddr) Unix.SOCK_STREAM 0 in
        match Unix.connect fd sockaddr with
        | () -> fd
        | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) ->
            (try Unix.close fd with Unix.Unix_error _ -> ());
            if Unix.gettimeofday () > deadline then die "soak: could not connect to server";
            Unix.sleepf 0.1;
            go ()
      in
      go ()
    in
    (* The request mix: well-behaved runs, budget-tripping runs (truncate),
       and fault-injected runs (exercise the retry ladder). *)
    let request_line rng =
      let triangle = "a1->a2, a2->a3, a1->a3" in
      let square = "a1->a2, a2->a3, a3->a4, a1->a4" in
      match Gf.Rng.int rng 5 with
      | 0 | 1 -> "run q=" ^ triangle
      | 2 -> "run rows=1 max_rows=5 q=" ^ square
      | 3 -> Printf.sprintf "run max_intermediate=%d q=%s" (50 + Gf.Rng.int rng 200) square
      | _ -> Printf.sprintf "run fault_at=%d q=%s" (1 + Gf.Rng.int rng 500) triangle
    in
    (* Mutations stay within a small id range so most are valid whatever
       the server's graph; an occasional checkpoint exercises snapshotting
       under concurrent queries. *)
    let mutation_line rng =
      match Gf.Rng.int rng 10 with
      | 0 | 1 -> "addvertex"
      | 2 | 3 | 4 | 5 ->
          Printf.sprintf "addedge %d %d" (Gf.Rng.int rng 64) (Gf.Rng.int rng 64)
      | 6 | 7 -> Printf.sprintf "deledge %d %d" (Gf.Rng.int rng 64) (Gf.Rng.int rng 64)
      | 8 -> Printf.sprintf "delvertex %d" (Gf.Rng.int rng 64)
      | _ -> "checkpoint"
    in
    let request_line rng =
      if mutate_pct > 0 && Gf.Rng.int rng 100 < mutate_pct then mutation_line rng
      else request_line rng
    in
    let bad = ref 0 and ok_n = ref 0 and rejected_n = ref 0 and err_n = ref 0 in
    let tally = Mutex.create () in
    let has_sub hay needle =
      let nh = String.length hay and nn = String.length needle in
      let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
      nn = 0 || at 0
    in
    let validate line =
      Mutex.lock tally;
      (if has_sub line "\"ok\":true" then incr ok_n
       else if has_sub line "\"error\":\"rejected\"" then incr rejected_n
       else if has_sub line "\"ok\":false" then incr err_n
       else begin
         incr bad;
         Printf.eprintf "soak: malformed response: %s\n%!" line
       end);
      Mutex.unlock tally
    in
    let client i =
      let fd = connect () in
      let ic = Unix.in_channel_of_descr fd in
      let oc = Unix.out_channel_of_descr fd in
      let rng = Gf.Rng.create (soak_seed lxor (i * 0x9e3779b9)) in
      (try
         for _ = 1 to requests do
           output_string oc (request_line rng);
           output_char oc '\n';
           flush oc;
           match input_line ic with
           | line -> validate line
           | exception End_of_file ->
               Mutex.lock tally;
               incr bad;
               Mutex.unlock tally;
               Printf.eprintf "soak: connection closed mid-session\n%!"
         done
       with Sys_error _ | Unix.Unix_error _ ->
         Mutex.lock tally;
         incr bad;
         Mutex.unlock tally);
      try Unix.close fd with Unix.Unix_error _ -> ()
    in
    let threads = List.init clients (fun i -> Thread.create client i) in
    List.iter Thread.join threads;
    if send_shutdown then begin
      let fd = connect () in
      let ic = Unix.in_channel_of_descr fd in
      let oc = Unix.out_channel_of_descr fd in
      output_string oc "shutdown\n";
      flush oc;
      (match input_line ic with
      | line -> if not (has_sub line "\"ok\":true") then incr bad
      | exception End_of_file -> incr bad);
      try Unix.close fd with Unix.Unix_error _ -> ()
    end;
    Printf.printf "soak: %d clients x %d requests: ok=%d rejected=%d error=%d malformed=%d\n"
      clients requests !ok_n !rejected_n !err_n !bad;
    if !bad > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "soak"
       ~doc:
         "Drive a running gfq serve with concurrent clients mixing good, budget-tripping, \
          faulted, and (with --mutate) durable-mutation requests; exit nonzero on any \
          malformed response. With --crash, run the fork/kill-9 durability torture matrix \
          instead (no server needed). With --topology CxW, spawn and torture a whole \
          cluster (no server needed either).")
    Term.(
      const go $ socket_arg $ port_arg $ host_arg $ clients $ requests $ soak_seed
      $ send_shutdown $ connect_timeout_s $ mutate_pct $ crash $ crash_seeds $ topology
      $ dataset $ scale $ replicas $ kill_worker)

(* --- slowlog: read a running server's flight recorder ------------------ *)

let slowlog_cmd =
  let count =
    Arg.(value & opt int 10 & info [ "n"; "count" ] ~docv:"N" ~doc:"Records to fetch.")
  in
  let stats =
    Arg.(
      value & flag
      & info [ "stats" ] ~doc:"Fetch the service health snapshot (the stats wire command).")
  in
  let trace_id =
    Arg.(
      value
      & opt (some int) None
      & info [ "trace" ] ~docv:"ID"
          ~doc:"Fetch the retained span trace for a flight-recorder record id.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"FILE"
          ~doc:
            "With --trace: strip the wire envelope and write the bare Chrome trace JSON to \
             FILE, ready for ui.perfetto.dev.")
  in
  let go socket port host count stats trace_id out =
    let endpoint = endpoint_arg_of socket port host in
    let fd, ask = dial_endpoint endpoint in
    (match (stats, trace_id) with
    | true, _ -> print_endline (ask "stats")
    | false, Some id -> (
        let reply = ask (Printf.sprintf "trace id=%d" id) in
        match strip_trace_envelope reply with
        | Some body -> (
            match out with
            | Some path -> write_trace_file ~id ~path body
            | None -> print_endline body)
        | None ->
            prerr_endline reply;
            exit 1)
    | false, None -> print_endline (ask (Printf.sprintf "slowlog %d" count)));
    try Unix.close fd with Unix.Unix_error _ -> ()
  in
  Cmd.v
    (Cmd.info "slowlog"
       ~doc:
         "Read a running gfq serve's always-on flight recorder: recent query records, the \
          stats health snapshot, or a retained span trace by id.")
    Term.(const go $ socket_arg $ port_arg $ host_arg $ count $ stats $ trace_id $ out)

(* --- top: a refreshing terminal dashboard over the stats command -------- *)

let top_cmd =
  let interval =
    Arg.(value & opt float 2.0 & info [ "interval" ] ~docv:"S" ~doc:"Refresh period in seconds.")
  in
  let frames =
    Arg.(
      value & opt int 0
      & info [ "count" ] ~docv:"N"
          ~doc:
            "Render N frames then exit (0 = refresh until interrupted; 1 prints a single \
             frame without clearing the screen).")
  in
  (* The stats reply is one flat JSON line built by Printf — scan it rather
     than depend on a JSON parser the toolchain doesn't ship. *)
  let scrape_num s key =
    let needle = Printf.sprintf "\"%s\":" key in
    let nlen = String.length needle and len = String.length s in
    let rec find i =
      if i + nlen > len then None
      else if String.sub s i nlen = needle then begin
        let j = ref (i + nlen) in
        let num c = (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E' in
        while !j < len && num s.[!j] do incr j done;
        if !j = i + nlen then None
        else float_of_string_opt (String.sub s (i + nlen) (!j - i - nlen))
      end
      else find (i + 1)
    in
    find 0
  in
  let inum s key = Option.map int_of_float (scrape_num s key) in
  (* Raw body of "key":[ ... ] with bracket matching (string-aware: embedded
     worker stats and error messages are JSON strings that may contain
     brackets). *)
  let raw_array s key =
    let needle = Printf.sprintf "\"%s\":[" key in
    let nlen = String.length needle and len = String.length s in
    let rec find i =
      if i + nlen > len then None
      else if String.sub s i nlen = needle then Some (i + nlen)
      else find (i + 1)
    in
    match find 0 with
    | None -> None
    | Some start ->
        let depth = ref 1 and i = ref start and in_str = ref false in
        while !i < len && !depth > 0 do
          (if !in_str then
             match s.[!i] with
             | '\\' -> incr i
             | '"' -> in_str := false
             | _ -> ()
           else
             match s.[!i] with
             | '"' -> in_str := true
             | '[' | '{' -> incr depth
             | ']' | '}' -> decr depth
             | _ -> ());
          incr i
        done;
        if !depth = 0 then Some (String.sub s start (!i - 1 - start)) else None
  in
  (* Split an array body into its depth-0 {...} elements. *)
  let objects body =
    let len = String.length body in
    let out = ref [] and depth = ref 0 and start = ref (-1) in
    let in_str = ref false and esc = ref false in
    for i = 0 to len - 1 do
      if !esc then esc := false
      else if !in_str then (
        match body.[i] with '\\' -> esc := true | '"' -> in_str := false | _ -> ())
      else
        match body.[i] with
        | '"' -> in_str := true
        | '{' ->
            if !depth = 0 then start := i;
            incr depth
        | '}' ->
            decr depth;
            if !depth = 0 && !start >= 0 then out := String.sub body !start (i - !start + 1) :: !out
        | _ -> ()
    done;
    List.rev !out
  in
  let fmt_ms v = match v with Some f -> Printf.sprintf "%.1f" f | None -> "-" in
  let render addr frame reply =
    let b = Buffer.create 1024 in
    let node = Option.value (Gf_cluster.Proto.json_str reply "node") ~default:"?" in
    let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
    if Gf_cluster.Proto.json_str reply "type" = Some "cluster_stats" then begin
      line "gfq top — %s — coordinator %s (frame %d)" addr node frame;
      line "requests %d   failovers %d   hedges %d (wins %d)   shards %d"
        (Option.value (inum reply "requests") ~default:0)
        (Option.value (inum reply "failovers") ~default:0)
        (Option.value (inum reply "hedges") ~default:0)
        (Option.value (inum reply "hedge_wins") ~default:0)
        (Option.value (inum reply "shards") ~default:0);
      line "request latency  p50 %sms  p95 %sms  p99 %sms"
        (fmt_ms (scrape_num reply "p50_ms"))
        (fmt_ms (scrape_num reply "p95_ms"))
        (fmt_ms (scrape_num reply "p99_ms"));
      (match raw_array reply "shard_latency" with
      | None | Some "" -> ()
      | Some body ->
          line "";
          line "%5s %8s %8s %8s %8s" "shard" "count" "p50ms" "p95ms" "p99ms";
          List.iter
            (fun o ->
              line "%5d %8d %8s %8s %8s"
                (Option.value (inum o "shard") ~default:0)
                (Option.value (inum o "count") ~default:0)
                (fmt_ms (scrape_num o "p50_ms"))
                (fmt_ms (scrape_num o "p95_ms"))
                (fmt_ms (scrape_num o "p99_ms")))
            (objects body));
      match raw_array reply "fleet" with
      | None | Some "" -> ()
      | Some body ->
          line "";
          line "fleet:";
          List.iter
            (fun o ->
              let ep = Option.value (Gf_cluster.Proto.json_str o "endpoint") ~default:"?" in
              match Gf_cluster.Proto.json_str o "error" with
              | Some e -> line "  %-32s DOWN  %s" ep e
              | None ->
                  line "  %-32s up    done=%d fail=%d q=%d p99=%sms wal=v%d/%d cache=%d"
                    ep
                    (Option.value (inum o "completed") ~default:0)
                    (Option.value (inum o "failed") ~default:0)
                    (Option.value (inum o "queue_depth") ~default:0)
                    (fmt_ms (scrape_num o "p99_ms"))
                    (Option.value (inum o "wal_version") ~default:0)
                    (Option.value (inum o "wal_pending") ~default:0)
                    (Option.value (inum o "plan_cache_entries") ~default:0))
            (objects body)
    end
    else begin
      (* A plain server: show its own health line. *)
      line "gfq top — %s (frame %d)" addr frame;
      line "completed %d   failed %d   retries %d   queue %d   breaker %s"
        (Option.value (inum reply "completed") ~default:0)
        (Option.value (inum reply "failed") ~default:0)
        (Option.value (inum reply "retries") ~default:0)
        (Option.value (inum reply "queue_depth") ~default:0)
        (Option.value (Gf_cluster.Proto.json_str reply "breaker") ~default:"?");
      line "latency  p50 %sms  p95 %sms  p99 %sms"
        (fmt_ms (scrape_num reply "p50_ms"))
        (fmt_ms (scrape_num reply "p95_ms"))
        (fmt_ms (scrape_num reply "p99_ms"))
    end;
    Buffer.contents b
  in
  let go socket port host interval frames =
    let endpoint = endpoint_arg_of socket port host in
    let addr = endpoint_to_string endpoint in
    let fd, ask = dial_endpoint endpoint in
    let frame = ref 0 in
    let continue () = frames <= 0 || !frame < frames in
    while continue () do
      incr frame;
      let reply = ask "stats" in
      if frames <> 1 then print_string "\027[2J\027[H";
      print_string (render addr !frame reply);
      flush stdout;
      if continue () then Unix.sleepf (Float.max 0.05 interval)
    done;
    try Unix.close fd with Unix.Unix_error _ -> ()
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live terminal dashboard over a running gfq serve: polls the stats wire command \
          and renders it. Against a cluster coordinator, shows cluster-wide request \
          counters, per-shard latency quantiles, and every worker's own health \
          (pulled and merged by the coordinator).")
    Term.(const go $ socket_arg $ port_arg $ host_arg $ interval $ frames)

let shell_cmd =
  let go graph_file dataset scale labels seed =
    let g = load_graph graph_file dataset scale labels seed in
    let db = Gf.Db.create g in
    (* In the shell a parse error must not exit the process. *)
    let parse_query s =
      match parse_query_result s with Ok q -> q | Error m -> failwith m
    in
    Format.printf "graphflow shell — %a@." Gf.Graph_stats.pp_summary
      (Gf.Graph_stats.summarize ~samples:200 g);
    print_endline
      "enter a pattern (DSL or MATCH ...) to count it; \\p PATTERN explains; \\e PATTERN\n\
       estimates cardinality; \\a PATTERN runs adaptively; \\q quits.";
    let rec loop () =
      print_string "gfq> ";
      match try Some (read_line ()) with End_of_file -> None with
      | None -> ()
      | Some line ->
          let line = String.trim line in
          let continue = ref true in
          (try
             if line = "" then ()
             else if line = "\\q" then continue := false
             else if String.length line >= 2 && line.[0] = '\\' then begin
               let cmd = line.[1] in
               let rest = String.trim (String.sub line 2 (String.length line - 2)) in
               let q = parse_query rest in
               match cmd with
               | 'p' -> print_string (Gf.Db.explain db q)
               | 'e' -> Format.printf "estimated %.1f matches@." (Gf.Db.estimate_cardinality db q)
               | 'a' ->
                   let t0 = Unix.gettimeofday () in
                   let c = Gf.Db.run ~adaptive:true db q in
                   Format.printf "%d matches in %.3fs (adaptive)@." c.Gf.Counters.output
                     (Unix.gettimeofday () -. t0)
               | _ -> print_endline "unknown command; \\p \\e \\a \\q"
             end
             else begin
               let q = parse_query line in
               let t0 = Unix.gettimeofday () in
               let c = Gf.Db.run db q in
               Format.printf "%d matches in %.3fs (i-cost %d, cache hits %d)@."
                 c.Gf.Counters.output
                 (Unix.gettimeofday () -. t0)
                 c.Gf.Counters.icost c.Gf.Counters.cache_hits
             end
           with
          | Failure m -> print_endline ("error: " ^ m)
          | Invalid_argument m -> print_endline ("error: " ^ m));
          if !continue then loop ()
    in
    loop ()
  in
  Cmd.v
    (Cmd.info "shell" ~doc:"Interactive query shell over a loaded graph.")
    Term.(const go $ graph_file $ dataset $ scale $ labels $ seed)

let () =
  let info = Cmd.info "gfq" ~doc:"Subgraph queries with hybrid worst-case optimal plans." in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            generate_cmd;
            snapshot_cmd;
            stats_cmd;
            plan_cmd;
            run_cmd;
            spectrum_cmd;
            catalogue_cmd;
            serve_cmd;
            soak_cmd;
            slowlog_cmd;
            top_cmd;
            shell_cmd;
          ]))
