(* gfq — command-line front end for the Graphflow reproduction.

   Subcommands: generate, stats, plan, run, spectrum, catalogue. Graphs come
   either from a file saved by [generate] (--graph) or from a named
   synthetic dataset (--dataset, --scale). *)

open Cmdliner
module Gf = Graphflow

let die msg =
  prerr_endline ("gfq: " ^ msg);
  exit 1

let load_graph graph_file dataset scale labels seed =
  let g =
    match (graph_file, dataset) with
    | Some path, _ -> (
        match Gf.Graph_io.load_result path with
        | Ok g -> g
        | Error e -> die (Gf.Graph_io.load_error_to_string e))
    | None, Some name -> (
        match Gf.Generators.dataset_name_of_string name with
        | Some d -> Gf.Generators.dataset ~scale d
        | None -> die (Printf.sprintf "unknown dataset %S" name))
    | None, None -> die "provide --graph FILE or --dataset NAME"
  in
  if labels > 1 then Gf.Graph.relabel g (Gf.Rng.create seed) ~num_vlabels:1 ~num_elabels:labels
  else g

(* Common options *)
let graph_file =
  Arg.(value & opt (some string) None & info [ "graph"; "g" ] ~docv:"FILE" ~doc:"Graph file.")

let dataset =
  Arg.(
    value
    & opt (some string) None
    & info [ "dataset"; "d" ] ~docv:"NAME"
        ~doc:"Synthetic dataset: amazon, epinions, google, berkstan, livejournal, twitter, human.")

let scale =
  Arg.(value & opt float 1.0 & info [ "scale" ] ~doc:"Dataset scale factor (default 1.0).")

let labels =
  Arg.(
    value & opt int 1
    & info [ "labels" ] ~doc:"Randomly assign this many edge labels (the paper's Q^J_i setup).")

let seed = Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Random seed for labeling.")

let query_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "query"; "q" ] ~docv:"PATTERN"
        ~doc:"Query pattern, e.g. 'a1->a2, a2->a3, a1->a3', or Q1..Q14 for the benchmark set.")

(* A parse error rendered with a caret under the offending offset. *)
let show_parse_error (e : Gf.Parse_error.t) =
  Printf.sprintf "parse error: %s\n  %s\n  %s^" e.Gf.Parse_error.message
    e.Gf.Parse_error.input
    (String.make (min e.Gf.Parse_error.pos (String.length e.Gf.Parse_error.input)) ' ')

let parse_query_result s =
  match
    if String.length s >= 2 && s.[0] = 'Q' then int_of_string_opt (String.sub s 1 (String.length s - 1))
    else None
  with
  | Some i -> (
      match Gf.Patterns.q i with
      | q -> Ok q
      | exception (Failure m | Invalid_argument m) -> Error m)
  | None -> (
      (* MATCH (...) patterns go through the Cypher frontend, everything
         else through the edge-list DSL. *)
      let upper = String.uppercase_ascii (String.trim s) in
      if String.length upper >= 5 && String.sub upper 0 5 = "MATCH" then
        match Gf.Cypher.parse_result s with
        | Ok (q, _) -> Ok q
        | Error e -> Error (show_parse_error e)
      else
        match Gf.Query_parser.parse_result s with
        | Ok q -> Ok q
        | Error e -> Error (show_parse_error e))

let parse_query s =
  match parse_query_result s with Ok q -> q | Error msg -> die msg

let generate_cmd =
  let out = Arg.(required & opt (some string) None & info [ "output"; "o" ] ~docv:"FILE" ~doc:"Output path.") in
  let dataset_pos = Arg.(required & pos 0 (some string) None & info [] ~docv:"DATASET") in
  let go dname scale labels seed out =
    let g = load_graph None (Some dname) scale labels seed in
    Gf.Graph_io.save g out;
    Format.printf "wrote %s: %a@." out Gf.Graph_stats.pp_summary (Gf.Graph_stats.summarize g)
  in
  Cmd.v (Cmd.info "generate" ~doc:"Generate a synthetic dataset and save it.")
    Term.(const go $ dataset_pos $ scale $ labels $ seed $ out)

let stats_cmd =
  let go graph_file dataset scale labels seed =
    let g = load_graph graph_file dataset scale labels seed in
    Format.printf "%a@." Gf.Graph_stats.pp_summary (Gf.Graph_stats.summarize g)
  in
  Cmd.v (Cmd.info "stats" ~doc:"Print structural statistics of a graph.")
    Term.(const go $ graph_file $ dataset $ scale $ labels $ seed)

let plan_cmd =
  let dot = Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz dot instead of text.") in
  let go graph_file dataset scale labels seed qs dot =
    let g = load_graph graph_file dataset scale labels seed in
    let db = Gf.Db.create g in
    let q = parse_query qs in
    if dot then
      let p, _ = Gf.Db.plan db q in
      print_string (Gf.Plan.to_dot p)
    else print_string (Gf.Db.explain db q)
  in
  Cmd.v (Cmd.info "plan" ~doc:"Show the optimizer's plan for a query.")
    Term.(const go $ graph_file $ dataset $ scale $ labels $ seed $ query_arg $ dot)

let run_cmd =
  let adaptive = Arg.(value & flag & info [ "adaptive" ] ~doc:"Adaptive QVO selection.") in
  let limit = Arg.(value & opt (some int) None & info [ "limit" ] ~doc:"Stop after N matches.") in
  let timeout_ms =
    Arg.(
      value
      & opt (some int) None
      & info [ "timeout-ms" ] ~docv:"MS"
          ~doc:"Wall-clock deadline; the run returns a truncated outcome when it trips.")
  in
  let max_rows =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-rows" ] ~docv:"N" ~doc:"Output-row cap (like --limit, reported as truncation).")
  in
  let max_intermediate =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-intermediate" ] ~docv:"N" ~doc:"Cap on intermediate tuples produced.")
  in
  let max_bytes =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-bytes" ] ~docv:"B"
          ~doc:"Cap on approximate bytes of materialized state (join tables, batches).")
  in
  let domains =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"N"
          ~doc:"Execute on N domains with the morsel-driven parallel executor.")
  in
  let explain_analyze =
    Arg.(
      value & flag
      & info [ "explain-analyze" ]
          ~doc:
            "Profile per-operator actuals and print them joined against the optimizer's \
             estimates (cardinality and cost q-errors per operator).")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the run (counters, outcome, per-operator rows) as one JSON object.")
  in
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:"After the run, print the Prometheus text exposition of the query metrics.")
  in
  let go graph_file dataset scale labels seed qs adaptive limit timeout_ms max_rows
      max_intermediate max_bytes domains explain_analyze json metrics =
    let g = load_graph graph_file dataset scale labels seed in
    let db = Gf.Db.create g in
    let q = parse_query qs in
    let max_output =
      match (limit, max_rows) with
      | Some a, Some b -> Some (min a b)
      | (Some _ as a), None -> a
      | None, b -> b
    in
    let budget =
      Gf.Governor.budget
        ?deadline_s:(Option.map (fun ms -> float_of_int ms /. 1000.) timeout_ms)
        ?max_output ?max_intermediate ?max_bytes ()
    in
    if explain_analyze || json then begin
      (* [--json] implies a profiled run so the envelope always carries the
         per-operator rows. *)
      let a = Gf.Db.explain_analyze ~adaptive ~domains ~budget db q in
      if json then print_endline (Gf.Db.analysis_to_json a)
      else print_string (Gf.Db.analysis_to_string a)
    end
    else begin
      let t0 = Unix.gettimeofday () in
      let c, outcome = Gf.Db.run_gov ~adaptive ~domains ~budget db q in
      let secs = Unix.gettimeofday () -. t0 in
      Format.printf "matches: %d@.outcome: %a@.time: %.3fs@.%a@." c.Gf.Counters.output
        Gf.Governor.pp_outcome outcome secs Gf.Counters.pp c
    end;
    if metrics then print_string (Gf.Db.metrics_exposition ())
  in
  Cmd.v (Cmd.info "run" ~doc:"Optimize and execute a query under an optional budget.")
    Term.(
      const go $ graph_file $ dataset $ scale $ labels $ seed $ query_arg $ adaptive $ limit
      $ timeout_ms $ max_rows $ max_intermediate $ max_bytes $ domains $ explain_analyze
      $ json $ metrics)

let spectrum_cmd =
  let go graph_file dataset scale labels seed qs =
    let g = load_graph graph_file dataset scale labels seed in
    let db = Gf.Db.create g in
    let q = parse_query qs in
    let s = Gf.Spectrum.run g q in
    let picked, _ = Gf.Db.plan db q in
    print_string (Gf.Spectrum.summary s ~picked_signature:(Gf.Plan.signature picked))
  in
  Cmd.v (Cmd.info "spectrum" ~doc:"Run every plan in the query's plan spectrum.")
    Term.(const go $ graph_file $ dataset $ scale $ labels $ seed $ query_arg)

let catalogue_cmd =
  let h = Arg.(value & opt int 3 & info [ "H"; "max-pattern" ] ~doc:"Max pattern size (paper's h).") in
  let z = Arg.(value & opt int 1000 & info [ "z"; "samples" ] ~doc:"Sample size (paper's z).") in
  let go graph_file dataset scale labels seed h z =
    let g = load_graph graph_file dataset scale labels seed in
    let cat = Gf.Catalog.create ~h ~z g in
    let secs, n = Gf.Rng.create 0 |> fun _ ->
      let t0 = Unix.gettimeofday () in
      let n = Gf.Catalog.build_exhaustive cat in
      (Unix.gettimeofday () -. t0, n)
    in
    Format.printf "catalogue: %d entries (h=%d z=%d) built in %.2fs@." n h z secs
  in
  Cmd.v (Cmd.info "catalogue" ~doc:"Build the exhaustive subgraph catalogue.")
    Term.(const go $ graph_file $ dataset $ scale $ labels $ seed $ h $ z)

let shell_cmd =
  let go graph_file dataset scale labels seed =
    let g = load_graph graph_file dataset scale labels seed in
    let db = Gf.Db.create g in
    (* In the shell a parse error must not exit the process. *)
    let parse_query s =
      match parse_query_result s with Ok q -> q | Error m -> failwith m
    in
    Format.printf "graphflow shell — %a@." Gf.Graph_stats.pp_summary
      (Gf.Graph_stats.summarize ~samples:200 g);
    print_endline
      "enter a pattern (DSL or MATCH ...) to count it; \\p PATTERN explains; \\e PATTERN\n\
       estimates cardinality; \\a PATTERN runs adaptively; \\q quits.";
    let rec loop () =
      print_string "gfq> ";
      match try Some (read_line ()) with End_of_file -> None with
      | None -> ()
      | Some line ->
          let line = String.trim line in
          let continue = ref true in
          (try
             if line = "" then ()
             else if line = "\\q" then continue := false
             else if String.length line >= 2 && line.[0] = '\\' then begin
               let cmd = line.[1] in
               let rest = String.trim (String.sub line 2 (String.length line - 2)) in
               let q = parse_query rest in
               match cmd with
               | 'p' -> print_string (Gf.Db.explain db q)
               | 'e' -> Format.printf "estimated %.1f matches@." (Gf.Db.estimate_cardinality db q)
               | 'a' ->
                   let t0 = Unix.gettimeofday () in
                   let c = Gf.Db.run ~adaptive:true db q in
                   Format.printf "%d matches in %.3fs (adaptive)@." c.Gf.Counters.output
                     (Unix.gettimeofday () -. t0)
               | _ -> print_endline "unknown command; \\p \\e \\a \\q"
             end
             else begin
               let q = parse_query line in
               let t0 = Unix.gettimeofday () in
               let c = Gf.Db.run db q in
               Format.printf "%d matches in %.3fs (i-cost %d, cache hits %d)@."
                 c.Gf.Counters.output
                 (Unix.gettimeofday () -. t0)
                 c.Gf.Counters.icost c.Gf.Counters.cache_hits
             end
           with
          | Failure m -> print_endline ("error: " ^ m)
          | Invalid_argument m -> print_endline ("error: " ^ m));
          if !continue then loop ()
    in
    loop ()
  in
  Cmd.v
    (Cmd.info "shell" ~doc:"Interactive query shell over a loaded graph.")
    Term.(const go $ graph_file $ dataset $ scale $ labels $ seed)

let () =
  let info = Cmd.info "gfq" ~doc:"Subgraph queries with hybrid worst-case optimal plans." in
  exit
    (Cmd.eval
       (Cmd.group info
          [ generate_cmd; stats_cmd; plan_cmd; run_cmd; spectrum_cmd; catalogue_cmd; shell_cmd ]))
