(* gfq — command-line front end for the Graphflow reproduction.

   Subcommands: generate, stats, plan, run, spectrum, catalogue. Graphs come
   either from a file saved by [generate] (--graph) or from a named
   synthetic dataset (--dataset, --scale). *)

open Cmdliner
module Gf = Graphflow

let load_graph graph_file dataset scale labels seed =
  let g =
    match (graph_file, dataset) with
    | Some path, _ -> Gf.Graph_io.load path
    | None, Some name -> (
        match Gf.Generators.dataset_name_of_string name with
        | Some d -> Gf.Generators.dataset ~scale d
        | None -> failwith (Printf.sprintf "unknown dataset %S" name))
    | None, None -> failwith "provide --graph FILE or --dataset NAME"
  in
  if labels > 1 then Gf.Graph.relabel g (Gf.Rng.create seed) ~num_vlabels:1 ~num_elabels:labels
  else g

(* Common options *)
let graph_file =
  Arg.(value & opt (some string) None & info [ "graph"; "g" ] ~docv:"FILE" ~doc:"Graph file.")

let dataset =
  Arg.(
    value
    & opt (some string) None
    & info [ "dataset"; "d" ] ~docv:"NAME"
        ~doc:"Synthetic dataset: amazon, epinions, google, berkstan, livejournal, twitter, human.")

let scale =
  Arg.(value & opt float 1.0 & info [ "scale" ] ~doc:"Dataset scale factor (default 1.0).")

let labels =
  Arg.(
    value & opt int 1
    & info [ "labels" ] ~doc:"Randomly assign this many edge labels (the paper's Q^J_i setup).")

let seed = Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Random seed for labeling.")

let query_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "query"; "q" ] ~docv:"PATTERN"
        ~doc:"Query pattern, e.g. 'a1->a2, a2->a3, a1->a3', or Q1..Q14 for the benchmark set.")

let parse_query s =
  match
    if String.length s >= 2 && s.[0] = 'Q' then int_of_string_opt (String.sub s 1 (String.length s - 1))
    else None
  with
  | Some i -> Gf.Patterns.q i
  | None ->
      (* MATCH (...) patterns go through the Cypher frontend, everything
         else through the edge-list DSL. *)
      let upper = String.uppercase_ascii (String.trim s) in
      if String.length upper >= 5 && String.sub upper 0 5 = "MATCH" then
        fst (Gf.Cypher.parse s)
      else Gf.Db.parse_query s

let generate_cmd =
  let out = Arg.(required & opt (some string) None & info [ "output"; "o" ] ~docv:"FILE" ~doc:"Output path.") in
  let dataset_pos = Arg.(required & pos 0 (some string) None & info [] ~docv:"DATASET") in
  let go dname scale labels seed out =
    let g = load_graph None (Some dname) scale labels seed in
    Gf.Graph_io.save g out;
    Format.printf "wrote %s: %a@." out Gf.Graph_stats.pp_summary (Gf.Graph_stats.summarize g)
  in
  Cmd.v (Cmd.info "generate" ~doc:"Generate a synthetic dataset and save it.")
    Term.(const go $ dataset_pos $ scale $ labels $ seed $ out)

let stats_cmd =
  let go graph_file dataset scale labels seed =
    let g = load_graph graph_file dataset scale labels seed in
    Format.printf "%a@." Gf.Graph_stats.pp_summary (Gf.Graph_stats.summarize g)
  in
  Cmd.v (Cmd.info "stats" ~doc:"Print structural statistics of a graph.")
    Term.(const go $ graph_file $ dataset $ scale $ labels $ seed)

let plan_cmd =
  let dot = Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz dot instead of text.") in
  let go graph_file dataset scale labels seed qs dot =
    let g = load_graph graph_file dataset scale labels seed in
    let db = Gf.Db.create g in
    let q = parse_query qs in
    if dot then
      let p, _ = Gf.Db.plan db q in
      print_string (Gf.Plan.to_dot p)
    else print_string (Gf.Db.explain db q)
  in
  Cmd.v (Cmd.info "plan" ~doc:"Show the optimizer's plan for a query.")
    Term.(const go $ graph_file $ dataset $ scale $ labels $ seed $ query_arg $ dot)

let run_cmd =
  let adaptive = Arg.(value & flag & info [ "adaptive" ] ~doc:"Adaptive QVO selection.") in
  let limit = Arg.(value & opt (some int) None & info [ "limit" ] ~doc:"Stop after N matches.") in
  let go graph_file dataset scale labels seed qs adaptive limit =
    let g = load_graph graph_file dataset scale labels seed in
    let db = Gf.Db.create g in
    let q = parse_query qs in
    let secs, c = Gf.Rng.create 0 |> fun _ ->
      let t0 = Unix.gettimeofday () in
      let c = Gf.Db.run ~adaptive ?limit db q in
      (Unix.gettimeofday () -. t0, c)
    in
    Format.printf "matches: %d@.time: %.3fs@.%a@." c.Gf.Counters.output secs Gf.Counters.pp c
  in
  Cmd.v (Cmd.info "run" ~doc:"Optimize and execute a query.")
    Term.(const go $ graph_file $ dataset $ scale $ labels $ seed $ query_arg $ adaptive $ limit)

let spectrum_cmd =
  let go graph_file dataset scale labels seed qs =
    let g = load_graph graph_file dataset scale labels seed in
    let db = Gf.Db.create g in
    let q = parse_query qs in
    let s = Gf.Spectrum.run g q in
    let picked, _ = Gf.Db.plan db q in
    print_string (Gf.Spectrum.summary s ~picked_signature:(Gf.Plan.signature picked))
  in
  Cmd.v (Cmd.info "spectrum" ~doc:"Run every plan in the query's plan spectrum.")
    Term.(const go $ graph_file $ dataset $ scale $ labels $ seed $ query_arg)

let catalogue_cmd =
  let h = Arg.(value & opt int 3 & info [ "H"; "max-pattern" ] ~doc:"Max pattern size (paper's h).") in
  let z = Arg.(value & opt int 1000 & info [ "z"; "samples" ] ~doc:"Sample size (paper's z).") in
  let go graph_file dataset scale labels seed h z =
    let g = load_graph graph_file dataset scale labels seed in
    let cat = Gf.Catalog.create ~h ~z g in
    let secs, n = Gf.Rng.create 0 |> fun _ ->
      let t0 = Unix.gettimeofday () in
      let n = Gf.Catalog.build_exhaustive cat in
      (Unix.gettimeofday () -. t0, n)
    in
    Format.printf "catalogue: %d entries (h=%d z=%d) built in %.2fs@." n h z secs
  in
  Cmd.v (Cmd.info "catalogue" ~doc:"Build the exhaustive subgraph catalogue.")
    Term.(const go $ graph_file $ dataset $ scale $ labels $ seed $ h $ z)

let shell_cmd =
  let go graph_file dataset scale labels seed =
    let g = load_graph graph_file dataset scale labels seed in
    let db = Gf.Db.create g in
    Format.printf "graphflow shell — %a@." Gf.Graph_stats.pp_summary
      (Gf.Graph_stats.summarize ~samples:200 g);
    print_endline
      "enter a pattern (DSL or MATCH ...) to count it; \\p PATTERN explains; \\e PATTERN\n\
       estimates cardinality; \\a PATTERN runs adaptively; \\q quits.";
    let rec loop () =
      print_string "gfq> ";
      match try Some (read_line ()) with End_of_file -> None with
      | None -> ()
      | Some line ->
          let line = String.trim line in
          let continue = ref true in
          (try
             if line = "" then ()
             else if line = "\\q" then continue := false
             else if String.length line >= 2 && line.[0] = '\\' then begin
               let cmd = line.[1] in
               let rest = String.trim (String.sub line 2 (String.length line - 2)) in
               let q = parse_query rest in
               match cmd with
               | 'p' -> print_string (Gf.Db.explain db q)
               | 'e' -> Format.printf "estimated %.1f matches@." (Gf.Db.estimate_cardinality db q)
               | 'a' ->
                   let t0 = Unix.gettimeofday () in
                   let c = Gf.Db.run ~adaptive:true db q in
                   Format.printf "%d matches in %.3fs (adaptive)@." c.Gf.Counters.output
                     (Unix.gettimeofday () -. t0)
               | _ -> print_endline "unknown command; \\p \\e \\a \\q"
             end
             else begin
               let q = parse_query line in
               let t0 = Unix.gettimeofday () in
               let c = Gf.Db.run db q in
               Format.printf "%d matches in %.3fs (i-cost %d, cache hits %d)@."
                 c.Gf.Counters.output
                 (Unix.gettimeofday () -. t0)
                 c.Gf.Counters.icost c.Gf.Counters.cache_hits
             end
           with
          | Failure m -> print_endline ("error: " ^ m)
          | Invalid_argument m -> print_endline ("error: " ^ m));
          if !continue then loop ()
    in
    loop ()
  in
  Cmd.v
    (Cmd.info "shell" ~doc:"Interactive query shell over a loaded graph.")
    Term.(const go $ graph_file $ dataset $ scale $ labels $ seed)

let () =
  let info = Cmd.info "gfq" ~doc:"Subgraph queries with hybrid worst-case optimal plans." in
  exit
    (Cmd.eval
       (Cmd.group info
          [ generate_cmd; stats_cmd; plan_cmd; run_cmd; spectrum_cmd; catalogue_cmd; shell_cmd ]))
