(* Shared datasets and measurement helpers for the benchmark harness.

   Every dataset is the paper's named analogue (see DESIGN.md Section 3)
   scaled by GF_BENCH_SCALE (default 0.25) so the full suite runs on a small
   container. All numbers are wall-clock of a second (warm) run, as in
   Section 8.1.1. *)

module Gf = Graphflow

let scale =
  match Sys.getenv_opt "GF_BENCH_SCALE" with
  | Some s -> (try float_of_string s with _ -> 0.25)
  | None -> 0.25

(* Smaller scale for the plan-spectrum experiments, which run dozens of
   plans per query, including plans whose intermediate results are orders of
   magnitude larger than the output (that asymmetry is the experiment). *)
let spectrum_scale = scale *. 0.22

let memo f =
  let cache = Hashtbl.create 8 in
  fun key ->
    match Hashtbl.find_opt cache key with
    | Some v -> v
    | None ->
        let v = f key in
        Hashtbl.replace cache key v;
        v

let dataset_at : Gf.Generators.dataset_name * float -> Gf.Graph.t =
  memo (fun (name, sc) -> Gf.Generators.dataset ~scale:sc name)

let dataset name = dataset_at (name, scale)

(* Edge-labeled variant (the paper's Q^J_i construction randomizes edge
   labels on both the data and the query). *)
let labeled : Gf.Generators.dataset_name * float * int -> Gf.Graph.t =
  memo (fun (name, sc, nl) ->
      Gf.Graph.relabel (dataset_at (name, sc)) (Gf.Rng.create 1000) ~num_vlabels:1
        ~num_elabels:nl)

let labeled_query i nl =
  Gf.Patterns.randomize_edge_labels (Gf.Rng.create (2000 + i + (100 * nl))) (Gf.Patterns.q i)
    ~num_elabels:nl

let catalog : Gf.Graph.t -> Gf.Catalog.t =
  (* Keyed by physical graph identity. *)
  let cache : (Obj.t * Gf.Catalog.t) list ref = ref [] in
  fun g ->
    match List.assq_opt (Obj.repr g) !cache with
    | Some c -> c
    | None ->
        let c = Gf.Catalog.create ~z:500 g in
        cache := (Obj.repr g, c) :: !cache;
        c

(* Warm run, then measured run. *)
let time_warm f =
  ignore (f ());
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (Unix.gettimeofday () -. t0, r)

(* One (cold) measured run, for heavyweight cells. *)
let time_once f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (Unix.gettimeofday () -. t0, r)

let order_name order =
  "a" ^ String.concat "a" (Array.to_list order |> List.map (fun v -> string_of_int (v + 1)))

let header title =
  Printf.printf "\n==================== %s ====================\n%!" title

let subheader t = Printf.printf "---- %s ----\n%!" t

let fmt_count n =
  if n >= 1_000_000_000 then Printf.sprintf "%.1fB" (float_of_int n /. 1e9)
  else if n >= 1_000_000 then Printf.sprintf "%.1fM" (float_of_int n /. 1e6)
  else if n >= 1_000 then Printf.sprintf "%.1fK" (float_of_int n /. 1e3)
  else string_of_int n
