bench/main.ml: Analyze Array Bechamel Bench_data Benchmark Float Format Graphflow Hashtbl List Measure Printexc Printf Staged String Sys Test Time Toolkit Unix
