bench/main.mli:
