bench/bench_data.ml: Array Graphflow Hashtbl List Obj Printf String Sys Unix
