open Gf_query
module Wander = Gf_catalog.Wander
module Catalog = Gf_catalog.Catalog
module Naive = Gf_exec.Naive
module Generators = Gf_graph.Generators
module Graph = Gf_graph.Graph
module Rng = Gf_util.Rng

let check_bool = Alcotest.(check bool)

let graph () = Generators.holme_kim (Rng.create 91) ~n:400 ~m_per:4 ~p_triad:0.5 ~recip:0.3

let test_triangle_unbiased () =
  let g = graph () in
  let q = Patterns.asymmetric_triangle in
  let truth = float_of_int (Naive.count g q) in
  let est = Wander.estimate g q ~walks:20_000 (Rng.create 1) in
  check_bool
    (Printf.sprintf "triangle est %f vs truth %f" est truth)
    true
    (Catalog.q_error ~estimate:est ~truth <= 1.3)

let test_diamond_x () =
  let g = graph () in
  let q = Patterns.diamond_x in
  let truth = float_of_int (Naive.count g q) in
  let est = Wander.estimate g q ~walks:40_000 (Rng.create 2) in
  check_bool
    (Printf.sprintf "diamond est %f vs truth %f" est truth)
    true
    (Catalog.q_error ~estimate:est ~truth <= 1.6)

let test_zero_matches () =
  (* A graph with no 3-cycles at all: a complete DAG. *)
  let n = 20 in
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      edges := (i, j, 0) :: !edges
    done
  done;
  let g =
    Graph.build ~num_vlabels:1 ~num_elabels:1 ~vlabel:(Array.make n 0)
      ~edges:(Array.of_list !edges)
  in
  let est = Wander.estimate g (Patterns.cycle 3) ~walks:500 (Rng.create 3) in
  check_bool "no cycles -> 0" true (est = 0.0)

let test_order_invariance_in_expectation () =
  let g = graph () in
  let q = Patterns.diamond_x in
  let truth = float_of_int (Naive.count g q) in
  List.iter
    (fun order ->
      let est = Wander.estimate_with_order g q ~order ~walks:40_000 (Rng.create 4) in
      check_bool
        (Printf.sprintf "order est %f vs truth %f" est truth)
        true
        (Catalog.q_error ~estimate:est ~truth <= 2.0))
    [ [| 0; 1; 2; 3 |]; [| 1; 2; 0; 3 |]; [| 2; 3; 1; 0 |] ]

let test_labeled () =
  let g = Graph.relabel (graph ()) (Rng.create 92) ~num_vlabels:2 ~num_elabels:2 in
  let q = Patterns.randomize_edge_labels (Rng.create 93) Patterns.asymmetric_triangle ~num_elabels:2 in
  let truth = float_of_int (Naive.count g q) in
  let est = Wander.estimate g q ~walks:20_000 (Rng.create 5) in
  check_bool
    (Printf.sprintf "labeled est %f vs truth %f" est truth)
    true
    (truth = 0.0 || Catalog.q_error ~estimate:est ~truth <= 2.0)

let suite =
  [
    ( "catalog.wander",
      [
        Alcotest.test_case "triangle unbiased" `Quick test_triangle_unbiased;
        Alcotest.test_case "diamond" `Quick test_diamond_x;
        Alcotest.test_case "zero matches" `Quick test_zero_matches;
        Alcotest.test_case "order invariance" `Slow test_order_invariance_in_expectation;
        Alcotest.test_case "labeled" `Quick test_labeled;
      ] );
  ]
