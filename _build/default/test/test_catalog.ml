open Gf_query
module Catalog = Gf_catalog.Catalog
module Independence = Gf_catalog.Independence
module Graph = Gf_graph.Graph
module Generators = Gf_graph.Generators
module Naive = Gf_exec.Naive
module Rng = Gf_util.Rng

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let graph () = Generators.holme_kim (Rng.create 99) ~n:500 ~m_per:4 ~p_triad:0.5 ~recip:0.3

let labeled () = Graph.relabel (graph ()) (Rng.create 100) ~num_vlabels:2 ~num_elabels:2

let near msg ~tolerance expected actual =
  check_bool
    (Printf.sprintf "%s: expected ~%f, got %f" msg expected actual)
    true
    (expected = 0.0 || abs_float (actual -. expected) /. Float.max expected 1.0 <= tolerance)

let test_edge_count () =
  let g = graph () in
  let cat = Catalog.create g in
  check_int "edge count = m" (Graph.num_edges g)
    (Catalog.edge_count cat ~elabel:0 ~slabel:0 ~dlabel:0)

let test_avg_partition_size () =
  let g = graph () in
  let cat = Catalog.create g in
  let avg = Catalog.avg_partition_size cat ~dir:Graph.Fwd ~slabel:0 ~elabel:0 ~nlabel:0 in
  near "avg out-degree" ~tolerance:1e-9
    (float_of_int (Graph.num_edges g) /. float_of_int (Graph.num_vertices g))
    avg

let test_entry_triangle_mu () =
  (* mu of extending an edge to the asymmetric triangle, with full sampling
     (z >= m), equals exact #triangles / #edges. *)
  let g = graph () in
  let cat = Catalog.create ~z:1_000_000 g in
  let q = Patterns.asymmetric_triangle in
  match Catalog.entry cat q ~new_vertex:2 with
  | None -> Alcotest.fail "entry expected"
  | Some e ->
      let triangles = Naive.count g q in
      let exact = float_of_int triangles /. float_of_int (Graph.num_edges g) in
      near "triangle mu" ~tolerance:0.02 exact e.Catalog.mu;
      check_int "two descriptors" 2 (List.length e.Catalog.sizes);
      check_bool "samples = edges" true (e.Catalog.samples = Graph.num_edges g)

let test_entry_sampling_approximates () =
  let g = graph () in
  let full = Catalog.create ~z:1_000_000 g in
  let sampled = Catalog.create ~z:500 g in
  let q = Patterns.asymmetric_triangle in
  let mu_full = (Option.get (Catalog.entry full q ~new_vertex:2)).Catalog.mu in
  let mu_sampled = (Option.get (Catalog.entry sampled q ~new_vertex:2)).Catalog.mu in
  near "sampled mu near exact" ~tolerance:0.5 mu_full mu_sampled

let test_entry_isomorphic_shared () =
  let g = graph () in
  let cat = Catalog.create ~z:200 g in
  let q1 = Patterns.asymmetric_triangle in
  (* Isomorphic copy with permuted vertex names: extension of the same shape
     must hit the same memoized entry. *)
  let q2 = Query.relabel_vertices q1 [| 1; 2; 0 |] in
  ignore (Catalog.entry cat q1 ~new_vertex:2);
  let n1 = Catalog.num_entries cat in
  ignore (Catalog.entry cat q2 ~new_vertex:0);
  check_int "no new entry for isomorphic extension" n1 (Catalog.num_entries cat)

let test_entry_oversize_none () =
  let g = graph () in
  let cat = Catalog.create ~h:2 g in
  check_bool "4-vertex pattern with h=2 has no entry" true
    (Catalog.entry cat Patterns.diamond_x ~new_vertex:3 = None)

let test_mu_fallback_oversize () =
  let g = graph () in
  let cat = Catalog.create ~h:2 ~z:500 g in
  (* Extending the 2-path prefix of diamond-X (a1,a2,a3) by a4: with h=2 the
     4-vertex pattern is missing; the fallback must return something
     sane (finite, non-negative). *)
  let mu = Catalog.mu_estimate cat Patterns.diamond_x ~new_vertex:3 in
  check_bool "fallback mu finite" true (Float.is_finite mu && mu >= 0.0);
  (* And it should not exceed the direct h=3 estimate wildly: the fallback is
     a minimum over sub-pattern estimates, each >= true selectivity
     in expectation. *)
  let cat3 = Catalog.create ~h:3 ~z:500 g in
  let mu3 = Catalog.mu_estimate cat3 Patterns.diamond_x ~new_vertex:3 in
  check_bool "h=3 direct entry exists" true (mu3 >= 0.0)

let test_estimate_cardinality_edge () =
  let g = graph () in
  let cat = Catalog.create g in
  let q = Query.unlabeled_edges 2 [ (0, 1) ] in
  near "edge cardinality exact" ~tolerance:1e-9
    (float_of_int (Graph.num_edges g))
    (Catalog.estimate_cardinality cat q)

let test_estimate_cardinality_triangle () =
  let g = graph () in
  let cat = Catalog.create ~z:1_000_000 g in
  let q = Patterns.asymmetric_triangle in
  let truth = float_of_int (Naive.count g q) in
  let est = Catalog.estimate_cardinality cat q in
  check_bool
    (Printf.sprintf "triangle estimate within 2x (est %f truth %f)" est truth)
    true
    (Catalog.q_error ~estimate:est ~truth <= 2.0)

let test_estimate_cardinality_labeled () =
  let g = labeled () in
  let cat = Catalog.create ~z:1_000_000 g in
  let rng = Rng.create 3 in
  let q = Patterns.randomize_edge_labels rng Patterns.asymmetric_triangle ~num_elabels:2 in
  let truth = float_of_int (Naive.count g q) in
  let est = Catalog.estimate_cardinality cat q in
  check_bool
    (Printf.sprintf "labeled triangle within 3x (est %f truth %f)" est truth)
    true
    (Catalog.q_error ~estimate:est ~truth <= 3.0)

let test_catalogue_beats_independence_on_triangle () =
  (* The headline of Appendix B: on cyclic patterns the catalogue's q-error
     is much smaller than the independence estimator's. *)
  let g = graph () in
  let cat = Catalog.create ~z:2000 g in
  let q = Patterns.asymmetric_triangle in
  let truth = float_of_int (Naive.count g q) in
  let cat_err = Catalog.q_error ~estimate:(Catalog.estimate_cardinality cat q) ~truth in
  let ind_err = Catalog.q_error ~estimate:(Independence.estimate g q) ~truth in
  check_bool
    (Printf.sprintf "catalogue (%.1f) beats independence (%.1f)" cat_err ind_err)
    true (cat_err < ind_err)

let test_build_exhaustive_unlabeled_h2 () =
  (* Unlabeled, h=2: extensions of the single-edge pattern = per existing
     vertex {none, fwd, bwd} minus all-none = 3^2 - 1 = 8 entries — the
     paper's Table 11 count for Amazon at h=2. *)
  let g = Generators.erdos_renyi (Rng.create 5) ~n:60 ~m:240 in
  let cat = Catalog.create ~h:2 ~z:50 g in
  check_int "8 entries" 8 (Catalog.build_exhaustive cat)

let test_build_exhaustive_h3_count_grows () =
  let g = Generators.erdos_renyi (Rng.create 5) ~n:60 ~m:240 in
  let c2 = Catalog.create ~h:2 ~z:50 g in
  let c3 = Catalog.create ~h:3 ~z:50 g in
  let n2 = Catalog.build_exhaustive c2 in
  let n3 = Catalog.build_exhaustive c3 in
  check_bool (Printf.sprintf "h=3 (%d) >> h=2 (%d)" n3 n2) true (n3 > 5 * n2)

let test_q_error () =
  near "exact" ~tolerance:1e-9 1.0 (Catalog.q_error ~estimate:10.0 ~truth:10.0);
  near "over" ~tolerance:1e-9 4.0 (Catalog.q_error ~estimate:40.0 ~truth:10.0);
  near "under" ~tolerance:1e-9 4.0 (Catalog.q_error ~estimate:10.0 ~truth:40.0);
  near "zero clamp" ~tolerance:1e-9 5.0 (Catalog.q_error ~estimate:5.0 ~truth:0.0)

let test_independence_on_path_reasonable () =
  (* Independence underestimates paths on skewed graphs (it misses the
     sum-of-squares degree effect) but degrades far more on cyclic
     patterns — the contrast Appendix B reports. *)
  let g = graph () in
  let truth q = float_of_int (Naive.count g q) in
  let err q = Catalog.q_error ~estimate:(Independence.estimate g q) ~truth:(truth q) in
  let path_err = err (Patterns.path 3) in
  let tri_err = err Patterns.asymmetric_triangle in
  check_bool
    (Printf.sprintf "path (%.1f) better than triangle (%.1f)" path_err tri_err)
    true
    (path_err *. 2.0 < tri_err)

let test_descriptor_size_sane () =
  let g = graph () in
  let cat = Catalog.create ~z:1000 g in
  let q = Patterns.asymmetric_triangle in
  (* Descriptor sources for extending to a3: a1 fwd, a2 fwd. *)
  let s1 = Catalog.descriptor_size cat q ~new_vertex:2 ~src:0 ~dir:Graph.Fwd ~elabel:0 in
  let s2 = Catalog.descriptor_size cat q ~new_vertex:2 ~src:1 ~dir:Graph.Fwd ~elabel:0 in
  check_bool "sizes positive" true (s1 > 0.0 && s2 > 0.0);
  (* Sources of scanned edges are out-degree-biased: their average forward
     list should be at least the global average. *)
  let global = Catalog.avg_partition_size cat ~dir:Graph.Fwd ~slabel:0 ~elabel:0 ~nlabel:0 in
  check_bool "edge-source bias" true (s1 >= global *. 0.8)

let suite =
  [
    ( "catalog.stats",
      [
        Alcotest.test_case "edge count" `Quick test_edge_count;
        Alcotest.test_case "avg partition size" `Quick test_avg_partition_size;
        Alcotest.test_case "triangle mu exact" `Slow test_entry_triangle_mu;
        Alcotest.test_case "sampling approximates" `Slow test_entry_sampling_approximates;
        Alcotest.test_case "isomorphic entries shared" `Quick test_entry_isomorphic_shared;
        Alcotest.test_case "oversize -> None" `Quick test_entry_oversize_none;
        Alcotest.test_case "mu fallback" `Quick test_mu_fallback_oversize;
        Alcotest.test_case "descriptor sizes" `Quick test_descriptor_size_sane;
      ] );
    ( "catalog.cardinality",
      [
        Alcotest.test_case "edge exact" `Quick test_estimate_cardinality_edge;
        Alcotest.test_case "triangle" `Slow test_estimate_cardinality_triangle;
        Alcotest.test_case "labeled triangle" `Slow test_estimate_cardinality_labeled;
        Alcotest.test_case "beats independence" `Slow test_catalogue_beats_independence_on_triangle;
        Alcotest.test_case "q-error" `Quick test_q_error;
        Alcotest.test_case "independence on path" `Quick test_independence_on_path_reasonable;
      ] );
    ( "catalog.exhaustive",
      [
        Alcotest.test_case "h=2 unlabeled = 8" `Quick test_build_exhaustive_unlabeled_h2;
        Alcotest.test_case "h=3 grows" `Slow test_build_exhaustive_h3_count_grows;
      ] );
  ]
