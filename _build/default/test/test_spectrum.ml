open Gf_query
module Spectrum = Gf_spectrum.Spectrum
module Parallel = Gf_exec.Parallel
module Exec = Gf_exec.Exec
module Naive = Gf_exec.Naive
module Counters = Gf_exec.Counters
module Plan = Gf_plan.Plan
module Planner = Gf_opt.Planner
module Catalog = Gf_catalog.Catalog
module Generators = Gf_graph.Generators
module Rng = Gf_util.Rng

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let graph () = Generators.holme_kim (Rng.create 71) ~n:120 ~m_per:3 ~p_triad:0.5 ~recip:0.3

let test_spectrum_families () =
  let q = Patterns.cycle 4 in
  let all, _capped = Spectrum.plans q in
  let count f = List.length (List.filter (fun (fam, _) -> fam = f) all) in
  check_bool "has WCO plans" true (count Spectrum.Wco > 0);
  check_bool "has BJ plans" true (count Spectrum.Bj > 0);
  (* Triangle: WCO only. *)
  let tri, _ = Spectrum.plans Patterns.asymmetric_triangle in
  check_int "triangle W" 3
    (List.length (List.filter (fun (f, _) -> f = Spectrum.Wco) tri));
  check_int "triangle B" 0
    (List.length (List.filter (fun (f, _) -> f = Spectrum.Bj) tri))

let test_spectrum_all_plans_correct () =
  let g = graph () in
  List.iter
    (fun i ->
      let q = Patterns.q i in
      let expected = Naive.count g q in
      let all, _ = Spectrum.plans ~per_subset_cap:4 ~family_cap:16 q in
      check_bool (Printf.sprintf "Q%d spectrum nonempty" i) true (all <> []);
      List.iter
        (fun (fam, p) ->
          check_int
            (Printf.sprintf "Q%d %s plan" i (Spectrum.family_to_string fam))
            expected (Exec.count g p))
        all)
    [ 2; 3; 4; 8; 12 ]

let test_spectrum_hybrid_exists_for_bowtie () =
  let all, _ = Spectrum.plans (Patterns.q 8) in
  check_bool "bowtie has hybrid plans" true
    (List.exists (fun (f, _) -> f = Spectrum.Hybrid) all)

let test_spectrum_run_and_summary () =
  let g = graph () in
  let q = Patterns.diamond_x in
  let s = Spectrum.run ~per_subset_cap:4 ~family_cap:8 g q in
  check_bool "entries" true (s.Spectrum.entries <> []);
  List.iter
    (fun e -> check_bool "positive time" true (e.Spectrum.seconds >= 0.0))
    s.Spectrum.entries;
  let cat = Catalog.create ~z:200 g in
  let picked, _ = Planner.plan cat q in
  let text = Spectrum.summary s ~picked_signature:(Plan.signature picked) in
  check_bool "summary mentions W" true
    (String.length text > 0 && String.contains text 'W')

let test_optimizer_pick_competitive () =
  (* The central claim of Figure 7: the optimizer's plan sits near the
     spectrum's fastest plan. We check by actual i-cost (stable, unlike
     wall-clock on tiny graphs): pick <= 2x the spectrum minimum. *)
  let g = Generators.holme_kim (Rng.create 72) ~n:400 ~m_per:4 ~p_triad:0.4 ~recip:0.3 in
  let cat = Catalog.create ~z:500 g in
  List.iter
    (fun i ->
      let q = Patterns.q i in
      let picked, _ = Planner.plan cat q in
      let picked_icost = (Exec.run g picked).Counters.icost in
      let all, _ = Spectrum.plans ~per_subset_cap:4 ~family_cap:16 q in
      let wco_costs =
        List.filter_map
          (fun (f, p) ->
            if f = Spectrum.Wco then Some (Exec.run g p).Counters.icost else None)
          all
      in
      let min_wco = List.fold_left min max_int wco_costs in
      check_bool
        (Printf.sprintf "Q%d pick icost %d <= 2x min wco %d" i picked_icost min_wco)
        true
        (picked_icost <= (2 * min_wco) + 1000))
    [ 1; 3; 4 ]

(* ---------- parallel ---------- *)

let test_parallel_same_counts () =
  let g = graph () in
  List.iter
    (fun i ->
      let q = Patterns.q i in
      let plan = Plan.wco q (List.hd (Query.connected_orders q)) in
      let seq = Exec.count g plan in
      List.iter
        (fun d ->
          let r = Parallel.run ~domains:d g plan in
          check_int
            (Printf.sprintf "Q%d with %d domains" i d)
            seq r.Parallel.counters.Counters.output)
        [ 1; 2; 4 ])
    [ 1; 3; 5 ]

let test_parallel_hybrid_plan () =
  let g = graph () in
  let q = Patterns.diamond_x in
  let plan = Plan.hash_join q (Plan.wco q [| 1; 2; 0 |]) (Plan.wco q [| 1; 2; 3 |]) in
  let seq = Exec.count g plan in
  let r = Parallel.run ~domains:3 g plan in
  check_int "hybrid parallel count" seq r.Parallel.counters.Counters.output

let test_parallel_work_division () =
  let g = Generators.holme_kim (Rng.create 73) ~n:2000 ~m_per:5 ~p_triad:0.4 ~recip:0.3 in
  let q = Patterns.asymmetric_triangle in
  let plan = Plan.wco q [| 0; 1; 2 |] in
  let r = Parallel.run ~domains:4 ~chunk:16 g plan in
  check_int "4 domains" 4 (Array.length r.Parallel.per_domain_output);
  (* On a single-core machine a domain can drain the shared queue before its
     siblings get scheduled, so per-domain shares are not guaranteed; the
     shares must simply account for the whole output. *)
  let total = Array.fold_left ( + ) 0 r.Parallel.per_domain_output in
  check_int "shares account for output" (Exec.count g plan) total;
  check_bool "some domain worked" true (Array.exists (fun o -> o > 0) r.Parallel.per_domain_output)

let suite =
  [
    ( "spectrum",
      [
        Alcotest.test_case "families" `Quick test_spectrum_families;
        Alcotest.test_case "all plans correct" `Slow test_spectrum_all_plans_correct;
        Alcotest.test_case "bowtie hybrids" `Quick test_spectrum_hybrid_exists_for_bowtie;
        Alcotest.test_case "run + summary" `Quick test_spectrum_run_and_summary;
        Alcotest.test_case "pick competitive" `Slow test_optimizer_pick_competitive;
      ] );
    ( "parallel",
      [
        Alcotest.test_case "same counts" `Quick test_parallel_same_counts;
        Alcotest.test_case "hybrid plan" `Quick test_parallel_hybrid_plan;
        Alcotest.test_case "work division" `Quick test_parallel_work_division;
      ] );
  ]
