(* Cross-subsystem agreement on random inputs: for random small queries on
   random graphs, every execution path in the repository must produce the
   same match count as the naive reference matcher. This is the test that
   catches planner/executor disagreements no unit test anticipates. *)

open Gf_query
module Catalog = Gf_catalog.Catalog
module Planner = Gf_opt.Planner
module Plan = Gf_plan.Plan
module Exec = Gf_exec.Exec
module Parallel = Gf_exec.Parallel
module Naive = Gf_exec.Naive
module Counters = Gf_exec.Counters
module Adaptive = Gf_adaptive.Adaptive
module Ghd = Gf_ghd.Ghd
module Bj = Gf_baseline.Bj
module Cfl = Gf_baseline.Cfl
module Query_gen = Gf_baseline.Query_gen
module Spectrum = Gf_spectrum.Spectrum
module Graph = Gf_graph.Graph
module Generators = Gf_graph.Generators
module Rng = Gf_util.Rng

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let random_graph rng =
  let n = 40 + Rng.int rng 80 in
  let g =
    Generators.holme_kim rng ~n ~m_per:(2 + Rng.int rng 3)
      ~p_triad:(Rng.float rng 0.6) ~recip:(Rng.float rng 0.5)
  in
  if Rng.bool rng then Graph.relabel g rng ~num_vlabels:(1 + Rng.int rng 2) ~num_elabels:(1 + Rng.int rng 2)
  else g

(* A random connected query without anti-parallel pairs, labels within the
   graph's alphabets. *)
let random_query rng g =
  let nv = 3 + Rng.int rng 3 in
  let q0 = Patterns.random_query rng ~num_vertices:nv ~dense:(Rng.bool rng) ~num_vlabels:(Graph.num_vlabels g) in
  Patterns.randomize_edge_labels rng q0 ~num_elabels:(Graph.num_elabels g)

let prop_all_engines_agree =
  QCheck2.Test.make ~name:"planner/adaptive/ghd/bj/parallel/leapfrog = naive" ~count:30
    QCheck2.Gen.(int_bound 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let g = random_graph rng in
      let q = random_query rng g in
      let expected = Naive.count g q in
      let cat = Catalog.create ~z:150 g in
      let plan, _ = Planner.plan cat q in
      let ok msg v =
        if v <> expected then
          QCheck2.Test.fail_reportf "%s: %d <> naive %d on %s" msg v expected
            (Query.to_string q)
        else true
      in
      ok "planner" (Exec.count g plan)
      && ok "cache off" (Exec.run ~cache:false g plan).Counters.output
      && ok "leapfrog" (Exec.run ~leapfrog:true g plan).Counters.output
      && ok "count_fast" (Exec.count_fast g plan)
      && ok "parallel(3)" (Parallel.run ~domains:3 g plan).Parallel.counters.Counters.output
      && ok "adaptive" (fst (Adaptive.run cat g q plan)).Counters.output
      && ok "bj baseline" (Bj.count g q)
      && ok "eh plan"
           (Exec.count g (Ghd.to_plan cat q (Ghd.min_width_decomposition q) Ghd.Lexicographic)))

let prop_spectrum_plans_agree =
  QCheck2.Test.make ~name:"every spectrum plan = naive" ~count:15
    QCheck2.Gen.(int_bound 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let g = random_graph rng in
      let q = random_query rng g in
      let expected = Naive.count g q in
      let all, _ = Spectrum.plans ~per_subset_cap:3 ~family_cap:8 q in
      List.for_all
        (fun (fam, p) ->
          let got = Exec.count g p in
          if got <> expected then
            QCheck2.Test.fail_reportf "%s plan: %d <> %d on %s"
              (Spectrum.family_to_string fam) got expected (Query.to_string q)
          else true)
        all)

let prop_cfl_agrees_distinct =
  QCheck2.Test.make ~name:"cfl = naive distinct" ~count:20
    QCheck2.Gen.(int_bound 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let g = random_graph rng in
      let q = random_query rng g in
      Cfl.count g q = Naive.count ~distinct:true g q)

let prop_data_queries_match =
  QCheck2.Test.make ~name:"data-extracted queries have >= 1 distinct match" ~count:20
    QCheck2.Gen.(int_bound 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let g = random_graph rng in
      let q = Query_gen.from_data g rng ~num_vertices:(4 + Rng.int rng 4) ~dense:(Rng.bool rng) in
      Naive.count ~distinct:true g q >= 1)

let test_count_by () =
  let g = Generators.holme_kim (Rng.create 7) ~n:150 ~m_per:4 ~p_triad:0.5 ~recip:0.3 in
  let db = Graphflow.Db.create ~z:150 g in
  let q = Patterns.asymmetric_triangle in
  let by_a1 = Graphflow.Db.count_by db q ~key:[ 0 ] in
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 by_a1 in
  check_int "group counts sum to total" (Graphflow.Db.count db q) total;
  (* Sorted descending. *)
  let rec desc = function
    | (_, a) :: ((_, b) :: _ as rest) -> a >= b && desc rest
    | _ -> true
  in
  check_bool "descending" true (desc by_a1);
  (* Grouping by all vertices gives singleton groups. *)
  let by_all = Graphflow.Db.count_by db q ~key:[ 0; 1; 2 ] in
  check_bool "all-key groups are singletons" true (List.for_all (fun (_, n) -> n = 1) by_all);
  check_bool "bad key rejected" true
    (try ignore (Graphflow.Db.count_by db q ~key:[ 9 ]); false with Invalid_argument _ -> true)

let test_to_dot () =
  let q = Patterns.q 9 in
  let hybrid =
    Plan.extend q
      (Plan.hash_join q (Plan.wco q [| 2; 3; 4 |]) (Plan.wco q [| 0; 1; 2 |]))
      5
  in
  let dot = Plan.to_dot hybrid in
  check_bool "digraph" true (String.length dot > 0 && String.sub dot 0 7 = "digraph");
  List.iter
    (fun needle ->
      check_bool (needle ^ " present") true
        (let re = Str.regexp_string needle in
         try ignore (Str.search_forward re dot 0); true with Not_found -> false))
    [ "SCAN"; "HASH-JOIN"; "E/I"; "build"; "probe" ]

let suite =
  let q t = QCheck_alcotest.to_alcotest t in
  [
    ( "crosscheck",
      [
        q prop_all_engines_agree;
        q prop_spectrum_plans_agree;
        q prop_cfl_agrees_distinct;
        q prop_data_queries_match;
      ] );
    ( "api",
      [
        Alcotest.test_case "count_by" `Quick test_count_by;
        Alcotest.test_case "to_dot" `Quick test_to_dot;
      ] );
  ]
