module Gf = Graphflow

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let db () =
  let g = Gf.Generators.holme_kim (Gf.Rng.create 81) ~n:200 ~m_per:4 ~p_triad:0.5 ~recip:0.3 in
  Gf.Db.create ~z:200 g

let test_quickstart_flow () =
  let db = db () in
  let q = Gf.Db.parse_query "a1->a2, a2->a3, a1->a3" in
  let expected = Gf.Naive.count (Gf.Db.graph db) q in
  check_int "count" expected (Gf.Db.count db q);
  check_int "adaptive count" expected (Gf.Db.count ~adaptive:true db q);
  check_bool "explain" true (String.length (Gf.Db.explain db q) > 10)

let test_sink_and_limit () =
  let db = db () in
  let q = Gf.Patterns.diamond_x in
  let seen = ref 0 in
  let c = Gf.Db.run ~limit:5 ~sink:(fun _ -> incr seen) db q in
  check_int "limit" 5 c.Gf.Counters.output;
  check_int "sink called" 5 !seen

let test_estimate () =
  let db = db () in
  let q = Gf.Patterns.asymmetric_triangle in
  let est = Gf.Db.estimate_cardinality db q in
  let truth = float_of_int (Gf.Db.count db q) in
  check_bool "estimate within 3x" true (Gf.Catalog.q_error ~estimate:est ~truth <= 3.0)

let test_adaptive_matches_fixed () =
  let db = db () in
  List.iter
    (fun i ->
      let q = Gf.Patterns.q i in
      check_int
        (Printf.sprintf "Q%d adaptive = fixed" i)
        (Gf.Db.count db q)
        (Gf.Db.count ~adaptive:true db q))
    [ 2; 3; 4; 8 ]

let suite =
  [
    ( "db",
      [
        Alcotest.test_case "quickstart" `Quick test_quickstart_flow;
        Alcotest.test_case "sink/limit" `Quick test_sink_and_limit;
        Alcotest.test_case "estimate" `Quick test_estimate;
        Alcotest.test_case "adaptive" `Quick test_adaptive_matches_fixed;
      ] );
  ]
