test/test_baseline.ml: Alcotest Gf_baseline Gf_exec Gf_graph Gf_query Gf_util List Patterns Printf
