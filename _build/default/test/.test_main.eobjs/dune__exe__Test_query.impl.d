test/test_query.ml: Alcotest Array Canon Gf_query Gf_util List Parser Patterns Printf QCheck2 QCheck_alcotest Query
