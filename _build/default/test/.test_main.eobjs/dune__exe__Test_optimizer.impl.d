test/test_optimizer.ml: Alcotest Array Float Gf_catalog Gf_exec Gf_graph Gf_opt Gf_plan Gf_query Gf_util List Patterns Printf Query String
