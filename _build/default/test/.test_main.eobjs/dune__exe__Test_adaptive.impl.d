test/test_adaptive.ml: Alcotest Array Gf_adaptive Gf_catalog Gf_exec Gf_graph Gf_opt Gf_plan Gf_query Gf_util List Patterns Printf Query
