test/test_spectrum.ml: Alcotest Array Gf_catalog Gf_exec Gf_graph Gf_opt Gf_plan Gf_query Gf_spectrum Gf_util List Patterns Printf Query String
