test/test_util.ml: Alcotest Array Bitset Gf_util Hashtbl Int_vec List Printf QCheck2 QCheck_alcotest Rng Sorted
