test/test_misc.ml: Alcotest Array Canon Filename Format Fun Gf_catalog Gf_exec Gf_ghd Gf_graph Gf_plan Gf_query Gf_util Graphflow List Patterns Printf Query String Sys
