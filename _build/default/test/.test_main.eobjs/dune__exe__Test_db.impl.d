test/test_db.ml: Alcotest Graphflow List Printf String
