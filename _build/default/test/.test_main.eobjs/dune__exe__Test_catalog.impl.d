test/test_catalog.ml: Alcotest Float Gf_catalog Gf_exec Gf_graph Gf_query Gf_util List Option Patterns Printf Query
