test/test_ghd.ml: Alcotest Array Gf_catalog Gf_exec Gf_ghd Gf_graph Gf_lp Gf_query Gf_util List Patterns Printf QCheck2 QCheck_alcotest Query
