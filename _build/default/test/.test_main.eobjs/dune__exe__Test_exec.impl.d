test/test_exec.ml: Alcotest Array Gf_exec Gf_graph Gf_plan Gf_query Gf_util List Patterns Printf QCheck2 QCheck_alcotest Query String
