test/test_depth.ml: Alcotest Array Filename Float Fun Gf_adaptive Gf_baseline Gf_catalog Gf_exec Gf_ghd Gf_graph Gf_opt Gf_plan Gf_query Gf_util Graphflow List Patterns Printf Query Sys
