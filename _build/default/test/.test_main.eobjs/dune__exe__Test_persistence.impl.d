test/test_persistence.ml: Alcotest Exec Filename Fun Gf_catalog Gf_exec Gf_graph Gf_plan Gf_query Gf_util List Option Patterns Plan Printf Query Sys
