test/test_wander.ml: Alcotest Array Gf_catalog Gf_exec Gf_graph Gf_query Gf_util List Patterns Printf
