test/test_graph.ml: Alcotest Array Filename Fun Generators Gf_graph Gf_util Graph Graph_io List QCheck2 QCheck_alcotest Stats Sys
