test/test_cypher.ml: Alcotest Array Canon Cypher Gf_query List Parser Patterns Query
