open Gf_query
module Simplex = Gf_lp.Simplex
module Edge_cover = Gf_lp.Edge_cover
module Ghd = Gf_ghd.Ghd
module Catalog = Gf_catalog.Catalog
module Exec = Gf_exec.Exec
module Naive = Gf_exec.Naive
module Generators = Gf_graph.Generators
module Rng = Gf_util.Rng
module Bitset = Gf_util.Bitset

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let near msg expected actual =
  check_bool (Printf.sprintf "%s: %f vs %f" msg expected actual) true
    (abs_float (expected -. actual) < 1e-6)

(* ---------- simplex ---------- *)

let test_simplex_basic () =
  (* min x + y s.t. x + y >= 2, x >= 0.5 -> objective 2. *)
  match Simplex.minimize ~c:[| 1.0; 1.0 |] ~a:[| [| 1.0; 1.0 |]; [| 1.0; 0.0 |] |] ~b:[| 2.0; 0.5 |] with
  | None -> Alcotest.fail "feasible"
  | Some (obj, x) ->
      near "objective" 2.0 obj;
      check_bool "x >= 0.5" true (x.(0) >= 0.5 -. 1e-9)

let test_simplex_fractional () =
  (* Triangle cover LP directly: 3 vars, each vertex covered by 2 edges. *)
  let a = [| [| 1.; 1.; 0. |]; [| 1.; 0.; 1. |]; [| 0.; 1.; 1. |] |] in
  match Simplex.minimize ~c:[| 1.; 1.; 1. |] ~a ~b:[| 1.; 1.; 1. |] with
  | None -> Alcotest.fail "feasible"
  | Some (obj, _) -> near "triangle 3/2" 1.5 obj

let test_simplex_infeasible () =
  (* x >= 2 and -x >= 1 is infeasible (rows with negative b get flipped). *)
  match Simplex.minimize ~c:[| 1.0 |] ~a:[| [| 1.0 |]; [| -1.0 |] |] ~b:[| 2.0; 1.0 |] with
  | None -> ()
  | Some _ -> Alcotest.fail "expected infeasible"

let test_simplex_degenerate_zero_rows () =
  match Simplex.minimize ~c:[| 2.0 |] ~a:[| [| 1.0 |] |] ~b:[| 0.0 |] with
  | None -> Alcotest.fail "feasible"
  | Some (obj, _) -> near "zero rhs" 0.0 obj

(* ---------- fractional edge cover ---------- *)

let test_cover_known_values () =
  near "single edge" 1.0 (Edge_cover.fractional_cover (Patterns.path 2));
  near "path3" 2.0 (Edge_cover.fractional_cover (Patterns.path 3));
  near "triangle" 1.5 (Edge_cover.fractional_cover Patterns.asymmetric_triangle);
  near "4-clique" 2.0 (Edge_cover.fractional_cover (Patterns.clique 4 ~cyclic:false));
  near "5-clique" 2.5 (Edge_cover.fractional_cover (Patterns.clique 5 ~cyclic:false));
  near "4-cycle" 2.0 (Edge_cover.fractional_cover (Patterns.cycle 4));
  near "5-cycle" 2.5 (Edge_cover.fractional_cover (Patterns.cycle 5));
  near "6-cycle" 3.0 (Edge_cover.fractional_cover (Patterns.cycle 6));
  (* a1 and a4 have disjoint incident edge sets, each needing total weight
     1, so the cover is 2 (the 3/2 of Figure 1c is the *bag* width). *)
  near "diamond-x" 2.0 (Edge_cover.fractional_cover Patterns.diamond_x);
  near "4-star" 4.0 (Edge_cover.fractional_cover (Patterns.q 11))

let test_cover_subset () =
  let q = Patterns.diamond_x in
  near "triangle subset" 1.5 (Edge_cover.fractional_cover_subset q (Bitset.of_list [ 0; 1; 2 ]));
  near "edge subset" 1.0 (Edge_cover.fractional_cover_subset q (Bitset.of_list [ 0; 1 ]))

(* Property: for any connected query, n/2 <= fractional cover <= greedy
   integral cover (each edge covers two vertices; any integral cover is
   feasible for the LP). And the min-width decomposition's width never
   exceeds the single-bag width. *)
let prop_cover_bounds =
  QCheck2.Test.make ~name:"fractional cover bounds" ~count:60
    QCheck2.Gen.(int_bound 100_000)
    (fun seed ->
      let rng = Gf_util.Rng.create seed in
      let n = 3 + Gf_util.Rng.int rng 4 in
      let q = Patterns.random_query rng ~num_vertices:n ~dense:(Gf_util.Rng.bool rng) ~num_vlabels:1 in
      let fc = Edge_cover.fractional_cover q in
      (* Greedy integral cover: repeatedly take an edge covering an
         uncovered vertex. *)
      let covered = ref Bitset.empty in
      let greedy = ref 0 in
      Array.iter
        (fun (e : Query.edge) ->
          if not (Bitset.mem e.Query.src !covered && Bitset.mem e.Query.dst !covered) then begin
            incr greedy;
            covered := Bitset.add e.Query.src (Bitset.add e.Query.dst !covered)
          end)
        q.Query.edges;
      let lower = float_of_int n /. 2.0 in
      if fc < lower -. 1e-6 then QCheck2.Test.fail_reportf "cover %f below n/2" fc
      else if fc > float_of_int !greedy +. 1e-6 then
        QCheck2.Test.fail_reportf "cover %f above greedy %d" fc !greedy
      else begin
        let d = Ghd.min_width_decomposition q in
        d.Ghd.width <= fc +. 1e-6
      end)

(* ---------- GHD ---------- *)

let test_ghd_triangle_single_bag () =
  let d = Ghd.min_width_decomposition Patterns.asymmetric_triangle in
  check_int "one bag" 1 (Array.length d.Ghd.bags);
  near "width 1.5" 1.5 d.Ghd.width

let test_ghd_diamond_x () =
  (* Diamond-X: two triangles joined on {a2,a3}, width 3/2 (Figure 1c's GHD). *)
  let d = Ghd.min_width_decomposition Patterns.diamond_x in
  near "width 1.5" 1.5 d.Ghd.width;
  check_int "two bags" 2 (Array.length d.Ghd.bags);
  let sorted = Array.to_list d.Ghd.bags |> List.sort compare in
  Alcotest.(check (list int)) "bags are the triangles"
    [ Bitset.of_list [ 0; 1; 2 ]; Bitset.of_list [ 1; 2; 3 ] ]
    sorted

let test_ghd_bowtie () =
  (* Q8 bowtie: two triangles sharing a3; EH's decomposition. *)
  let d = Ghd.min_width_decomposition (Patterns.q 8) in
  near "width 1.5" 1.5 d.Ghd.width;
  check_int "two bags" 2 (Array.length d.Ghd.bags)

let test_ghd_acyclic_star () =
  (* 4-star: single edges as bags give width 1. *)
  let d = Ghd.min_width_decomposition (Patterns.q 11) in
  near "width 1" 1.0 d.Ghd.width

let test_ghd_running_intersection_rejects () =
  (* The triangle's 3-bag edge decomposition violates RIP, so no
     multi-bag decomposition of the triangle may appear. *)
  let all = Ghd.decompositions Patterns.asymmetric_triangle in
  List.iter
    (fun d -> check_int "triangle only 1-bag" 1 (Array.length d.Ghd.bags))
    all

let graph () = Generators.holme_kim (Rng.create 55) ~n:140 ~m_per:3 ~p_triad:0.5 ~recip:0.35

let test_ghd_plans_correct () =
  let g = graph () in
  let cat = Catalog.create ~z:300 g in
  List.iter
    (fun i ->
      let q = Patterns.q i in
      let d = Ghd.min_width_decomposition q in
      List.iter
        (fun mode ->
          let p = Ghd.to_plan cat q d mode in
          check_int
            (Printf.sprintf "Q%d EH plan count" i)
            (Naive.count g q) (Exec.count g p))
        [ Ghd.Lexicographic; Ghd.Best_estimated; Ghd.Worst_estimated ])
    [ 1; 2; 3; 4; 8; 11; 12 ]

let test_ghd_good_not_slower_estimated () =
  let g = graph () in
  let cat = Catalog.create ~z:300 g in
  let q = Patterns.q 8 in
  let d = Ghd.min_width_decomposition q in
  let good = Ghd.to_plan cat q d Ghd.Best_estimated in
  let bad = Ghd.to_plan cat q d Ghd.Worst_estimated in
  let gi = (Exec.run g good).Gf_exec.Counters.icost in
  let bi = (Exec.run g bad).Gf_exec.Counters.icost in
  check_bool (Printf.sprintf "EH-g icost %d <= EH-b %d" gi bi) true (gi <= bi)

let test_bag_orders_and_custom_plan () =
  let g = graph () in
  let q = Patterns.diamond_x in
  let d = Ghd.min_width_decomposition q in
  let orders = Ghd.bag_orders q d in
  check_int "two bags of orders" 2 (Array.length orders);
  (* Every combination of bag orderings gives the same (correct) count. *)
  let expected = Naive.count g q in
  List.iter
    (fun o1 ->
      List.iter
        (fun o2 ->
          let p = Ghd.plan_with_orders q d [| o1; o2 |] in
          check_int "combo correct" expected (Exec.count g p))
        (List.filteri (fun i _ -> i < 2) orders.(1)))
    (List.filteri (fun i _ -> i < 2) orders.(0))

let suite =
  [
    ( "lp.simplex",
      [
        Alcotest.test_case "basic" `Quick test_simplex_basic;
        Alcotest.test_case "fractional" `Quick test_simplex_fractional;
        Alcotest.test_case "infeasible" `Quick test_simplex_infeasible;
        Alcotest.test_case "degenerate" `Quick test_simplex_degenerate_zero_rows;
      ] );
    ( "lp.edge_cover",
      [
        Alcotest.test_case "known values" `Quick test_cover_known_values;
        Alcotest.test_case "subsets" `Quick test_cover_subset;
        QCheck_alcotest.to_alcotest prop_cover_bounds;
      ] );
    ( "ghd",
      [
        Alcotest.test_case "triangle" `Quick test_ghd_triangle_single_bag;
        Alcotest.test_case "diamond-x" `Quick test_ghd_diamond_x;
        Alcotest.test_case "bowtie" `Quick test_ghd_bowtie;
        Alcotest.test_case "star" `Quick test_ghd_acyclic_star;
        Alcotest.test_case "RIP rejects" `Quick test_ghd_running_intersection_rejects;
        Alcotest.test_case "plans correct" `Slow test_ghd_plans_correct;
        Alcotest.test_case "good <= bad" `Quick test_ghd_good_not_slower_estimated;
        Alcotest.test_case "bag order combos" `Quick test_bag_orders_and_custom_plan;
      ] );
  ]
