open Gf_query
module Bj = Gf_baseline.Bj
module Cfl = Gf_baseline.Cfl
module Naive = Gf_exec.Naive
module Generators = Gf_graph.Generators
module Graph = Gf_graph.Graph
module Rng = Gf_util.Rng
module Bitset = Gf_util.Bitset

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let graph () = Generators.holme_kim (Rng.create 61) ~n:200 ~m_per:4 ~p_triad:0.5 ~recip:0.3

let test_bj_correct () =
  let g = graph () in
  List.iter
    (fun i ->
      let q = Patterns.q i in
      check_int (Printf.sprintf "Q%d BJ count" i) (Naive.count g q) (Bj.count g q))
    [ 1; 2; 3; 4; 5; 8; 11; 13 ]

let test_bj_orders_all_correct () =
  let g = graph () in
  let q = Patterns.asymmetric_triangle in
  let expected = Naive.count g q in
  List.iter
    (fun order -> check_int "order-insensitive" expected (Bj.count ~edge_order:order g q))
    (Bj.all_edge_orders q)

let test_bj_limit_and_stats () =
  let g = graph () in
  let q = Patterns.asymmetric_triangle in
  let s = Bj.run ~limit:3 g q in
  check_int "limit" 3 s.Bj.matches;
  let full = Bj.run g q in
  check_bool "open triangles blow up intermediates" true (full.Bj.intermediate > full.Bj.matches)

let test_bj_all_edge_orders_cap () =
  let q = Patterns.q 14 in
  let orders = Bj.all_edge_orders ~max_orders:50 q in
  check_int "capped" 50 (List.length orders)

let test_cfl_core () =
  check_int "triangle core" 3 (Bitset.cardinal (Cfl.core Patterns.asymmetric_triangle));
  check_int "tree core empty" 0 (Bitset.cardinal (Cfl.core (Patterns.q 13)));
  check_int "tailed triangle core" 3 (Bitset.cardinal (Cfl.core Patterns.tailed_triangle));
  check_int "bowtie core" 5 (Bitset.cardinal (Cfl.core (Patterns.q 8)))

let test_cfl_correct () =
  let g = Graph.relabel (graph ()) (Rng.create 62) ~num_vlabels:4 ~num_elabels:1 in
  List.iter
    (fun i ->
      let q = Patterns.q i in
      check_int
        (Printf.sprintf "Q%d CFL count (distinct)" i)
        (Naive.count ~distinct:true g q)
        (Cfl.count g q))
    [ 1; 2; 3; 4; 11; 13 ]

let test_cfl_random_queries () =
  let g = Generators.dataset ~scale:0.25 Generators.Human in
  let rng = Rng.create 63 in
  for _ = 1 to 5 do
    let q = Patterns.random_query rng ~num_vertices:5 ~dense:false ~num_vlabels:44 in
    check_int "random query matches naive"
      (Naive.count ~distinct:true g q)
      (Cfl.count g q)
  done

let test_cfl_limit () =
  let g = graph () in
  let q = Patterns.asymmetric_triangle in
  let full = Cfl.count g q in
  if full > 2 then begin
    let s = Cfl.run ~limit:2 g q in
    check_int "limit" 2 s.Cfl.matches
  end

let suite =
  [
    ( "baseline.bj",
      [
        Alcotest.test_case "correct" `Slow test_bj_correct;
        Alcotest.test_case "all orders" `Quick test_bj_orders_all_correct;
        Alcotest.test_case "limit/stats" `Quick test_bj_limit_and_stats;
        Alcotest.test_case "order cap" `Quick test_bj_all_edge_orders_cap;
      ] );
    ( "baseline.cfl",
      [
        Alcotest.test_case "2-core" `Quick test_cfl_core;
        Alcotest.test_case "correct" `Slow test_cfl_correct;
        Alcotest.test_case "random human queries" `Slow test_cfl_random_queries;
        Alcotest.test_case "limit" `Quick test_cfl_limit;
      ] );
  ]
