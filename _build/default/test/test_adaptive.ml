open Gf_query
module Adaptive = Gf_adaptive.Adaptive
module Catalog = Gf_catalog.Catalog
module Planner = Gf_opt.Planner
module Plan = Gf_plan.Plan
module Exec = Gf_exec.Exec
module Naive = Gf_exec.Naive
module Counters = Gf_exec.Counters
module Graph = Gf_graph.Graph
module Generators = Gf_graph.Generators
module Rng = Gf_util.Rng

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let graph () = Generators.holme_kim (Rng.create 31) ~n:250 ~m_per:4 ~p_triad:0.5 ~recip:0.35

let test_adaptable () =
  let q = Patterns.diamond_x in
  check_bool "wco chain adaptable" true (Adaptive.adaptable (Plan.wco q [| 0; 1; 2; 3 |]));
  let hybrid = Plan.hash_join q (Plan.wco q [| 1; 2; 0 |]) (Plan.wco q [| 1; 2; 3 |]) in
  check_bool "single E/I chains not adaptable" false (Adaptive.adaptable hybrid)

let test_same_results_wco () =
  let g = graph () in
  let cat = Catalog.create ~z:300 g in
  List.iter
    (fun i ->
      let q = Patterns.q i in
      List.iter
        (fun order ->
          let plan = Plan.wco q order in
          let fixed = Exec.count g plan in
          let c, stats = Adaptive.run cat g q plan in
          check_int (Printf.sprintf "Q%d adaptive output" i) fixed c.Counters.output;
          check_int (Printf.sprintf "Q%d one segment" i) 1 stats.Adaptive.segments;
          check_bool "routed tuples" true (stats.Adaptive.tuples_routed > 0))
        (List.filteri (fun idx _ -> idx < 3) (Query.connected_orders q)))
    [ 2; 3; 4; 5 ]

let test_same_tuples () =
  let g = graph () in
  let cat = Catalog.create ~z:300 g in
  let q = Patterns.diamond_x in
  let plan = Plan.wco q [| 0; 1; 2; 3 |] in
  let fixed = Exec.collect g plan |> List.map Array.copy |> List.sort compare in
  let adaptive = ref [] in
  let _ = Adaptive.run ~sink:(fun t -> adaptive := Array.copy t :: !adaptive) cat g q plan in
  Alcotest.(check (list (array int))) "same tuple set" fixed (List.sort compare !adaptive)

let test_same_results_hybrid () =
  (* Q10's optimizer plan contains an E/I chain inside a hybrid tree. *)
  let g = graph () in
  let cat = Catalog.create ~z:300 g in
  let q = Patterns.q 10 in
  let plan, _ = Planner.plan cat q in
  let fixed = Exec.count g plan in
  let c, _stats = Adaptive.run cat g q plan in
  check_int "hybrid adaptive output" fixed c.Counters.output

let test_adaptivity_actually_routes () =
  (* Construct the Figure 4-style situation: a graph where different scan
     edges have wildly different degrees at their endpoints, so different
     orderings win for different tuples. *)
  let g = Generators.barabasi_albert (Rng.create 37) ~n:2000 ~m_per:5 ~recip:0.4 in
  let cat = Catalog.create ~z:500 g in
  let q = Patterns.diamond_x in
  let plan = Plan.wco q [| 1; 2; 0; 3 |] in
  let _, stats = Adaptive.run cat g q plan in
  check_bool
    (Printf.sprintf "multiple orderings used (%d of %d)" stats.Adaptive.orderings_used
       stats.Adaptive.candidate_orderings)
    true
    (stats.Adaptive.orderings_used >= 2);
  check_bool "candidates = connected extensions" true (stats.Adaptive.candidate_orderings >= 2)

let test_limit_respected () =
  let g = graph () in
  let cat = Catalog.create ~z:300 g in
  let q = Patterns.diamond_x in
  let plan = Plan.wco q [| 0; 1; 2; 3 |] in
  let c, _ = Adaptive.run ~limit:7 cat g q plan in
  check_int "limit" 7 c.Counters.output

let test_adaptive_can_reduce_icost () =
  (* On the skewed graph, adaptive should not do dramatically more
     intersection work than the best fixed plan, and should beat the worst
     fixed plan. *)
  let g = Generators.barabasi_albert (Rng.create 41) ~n:3000 ~m_per:5 ~recip:0.3 in
  let cat = Catalog.create ~z:500 g in
  let q = Patterns.diamond_x in
  let orders = Query.connected_orders q in
  let fixed_costs =
    List.map (fun o -> (Exec.run g (Plan.wco q o)).Counters.icost) orders
  in
  let worst = List.fold_left max 0 fixed_costs in
  let plan = Plan.wco q [| 1; 2; 0; 3 |] in
  let c, _ = Adaptive.run cat g q plan in
  check_bool
    (Printf.sprintf "adaptive icost %d < worst fixed %d" c.Counters.icost worst)
    true
    (c.Counters.icost < worst)

let suite =
  [
    ( "adaptive",
      [
        Alcotest.test_case "adaptable predicate" `Quick test_adaptable;
        Alcotest.test_case "same results (wco)" `Slow test_same_results_wco;
        Alcotest.test_case "same tuples" `Quick test_same_tuples;
        Alcotest.test_case "same results (hybrid)" `Quick test_same_results_hybrid;
        Alcotest.test_case "routes adaptively" `Slow test_adaptivity_actually_routes;
        Alcotest.test_case "limit" `Quick test_limit_respected;
        Alcotest.test_case "icost sane" `Slow test_adaptive_can_reduce_icost;
      ] );
  ]
