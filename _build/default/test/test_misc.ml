open Gf_query
module Counters = Gf_exec.Counters
module Exec = Gf_exec.Exec
module Plan = Gf_plan.Plan
module Ghd = Gf_ghd.Ghd
module Parallel = Gf_exec.Parallel
module Graph = Gf_graph.Graph
module Graph_io = Gf_graph.Graph_io
module Generators = Gf_graph.Generators
module Catalog = Gf_catalog.Catalog
module Rng = Gf_util.Rng
module Bitset = Gf_util.Bitset
module Timing = Gf_util.Timing

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_counters_merge () =
  let a = Counters.create () and b = Counters.create () in
  a.Counters.icost <- 10;
  a.Counters.output <- 2;
  a.Counters.produced <- 5;
  b.Counters.icost <- 7;
  b.Counters.cache_hits <- 3;
  let m = Counters.merge [ a; b ] in
  check_int "icost" 17 m.Counters.icost;
  check_int "output" 2 m.Counters.output;
  check_int "cache" 3 m.Counters.cache_hits;
  check_int "intermediate" 3 (Counters.intermediate m);
  check_bool "printable" true (String.length (Format.asprintf "%a" Counters.pp m) > 0)

let test_timing () =
  let t, v = Timing.time (fun () -> 42) in
  check_int "result" 42 v;
  check_bool "non-negative" true (t >= 0.0)

let test_graph_io_bad_files () =
  let with_file content f =
    let path = Filename.temp_file "gf_bad" ".graph" in
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        let oc = open_out path in
        output_string oc content;
        close_out oc;
        f path)
  in
  let fails content =
    with_file content (fun path ->
        try
          ignore (Graph_io.load path);
          false
        with Failure _ -> true)
  in
  check_bool "empty" true (fails "");
  check_bool "bad header" true (fails "not a graph\n");
  check_bool "bad sizes" true (fails "graphflow v1\nnope\n");
  check_bool "edge count mismatch" true (fails "graphflow v1\n2 5 1 1\ne 0 1 0\n");
  check_bool "garbage line" true (fails "graphflow v1\n2 1 1 1\nx y z\n")

let test_ghd_q10_decomposition () =
  (* Appendix A reports EH's minimum-width GHDs for Q10 at width 2 (diamond
     joined with triangle). Our enumeration allows edge covers shared
     between bags and finds a strictly better width-3/2 decomposition: the
     three triangles (a1a2a3), (a2a3a4), (a4a5a6) in a path — every bag an
     induced triangle, running intersection satisfied. The diamond+triangle
     decomposition must also be present at width 2. *)
  let d = Ghd.min_width_decomposition (Patterns.q 10) in
  check_bool "min width 1.5" true (abs_float (d.Ghd.width -. 1.5) < 1e-6);
  check_int "three triangle bags" 3 (Array.length d.Ghd.bags);
  Array.iter (fun b -> check_int "bag is a triangle" 3 (Bitset.cardinal b)) d.Ghd.bags;
  let all = Ghd.decompositions (Patterns.q 10) in
  check_bool "EH's diamond+triangle GHD also enumerated" true
    (List.exists
       (fun d ->
         Array.length d.Ghd.bags = 2
         && List.sort compare (Array.to_list d.Ghd.bags)
            = [ Bitset.of_list [ 0; 1; 2; 3 ]; Bitset.of_list [ 3; 4; 5 ] ])
       all)

let test_ghd_q9_exists () =
  (* Q9 admits a 3-bag decomposition (two triangles + the closing pair). *)
  let all = Ghd.decompositions (Patterns.q 9) in
  check_bool "has decompositions" true (List.length all >= 1);
  let d = Ghd.min_width_decomposition (Patterns.q 9) in
  check_bool "min width <= 2" true (d.Ghd.width <= 2.0 +. 1e-9)

let test_parallel_chunk_sizes () =
  let g = Generators.holme_kim (Rng.create 83) ~n:200 ~m_per:4 ~p_triad:0.4 ~recip:0.3 in
  let q = Patterns.asymmetric_triangle in
  let plan = Plan.wco q [| 0; 1; 2 |] in
  let expected = Exec.count g plan in
  List.iter
    (fun chunk ->
      let r = Parallel.run ~domains:2 ~chunk g plan in
      check_int
        (Printf.sprintf "chunk %d" chunk)
        expected r.Parallel.counters.Counters.output)
    [ 1; 7; 64; 100_000 ]

let test_clique_orientations () =
  let acyclic = Patterns.clique 4 ~cyclic:false in
  let cyclic = Patterns.clique 4 ~cyclic:true in
  check_int "both 6 edges" (Query.num_edges acyclic) (Query.num_edges cyclic);
  check_bool "different orientation" false (Canon.iso acyclic cyclic);
  (* The acyclic orientation has a source vertex (out-degree 3). *)
  let out_deg q v =
    Array.fold_left (fun acc (e : Query.edge) -> if e.src = v then acc + 1 else acc) 0 q.Query.edges
  in
  check_int "acyclic source" 3 (out_deg acyclic 0);
  check_bool "cyclic has no 3-source at 0" true (out_deg cyclic 0 < 3)

let test_catalog_avg_partition_labeled () =
  let g =
    Graph.build ~num_vlabels:2 ~num_elabels:1 ~vlabel:[| 0; 0; 1; 1 |]
      ~edges:[| (0, 2, 0); (0, 3, 0); (1, 2, 0) |]
  in
  let cat = Catalog.create g in
  (* label-0 vertices {0,1}: forward partitions to label 1: sizes 2 and 1. *)
  let avg = Catalog.avg_partition_size cat ~dir:Graph.Fwd ~slabel:0 ~elabel:0 ~nlabel:1 in
  check_bool "avg 1.5" true (abs_float (avg -. 1.5) < 1e-9);
  let avg0 = Catalog.avg_partition_size cat ~dir:Graph.Fwd ~slabel:0 ~elabel:0 ~nlabel:0 in
  check_bool "no l0 targets" true (avg0 = 0.0)

let test_exec_collect_schema () =
  let g =
    Graph.build ~num_vlabels:1 ~num_elabels:1 ~vlabel:(Array.make 3 0)
      ~edges:[| (0, 1, 0); (1, 2, 0); (0, 2, 0) |]
  in
  let q = Patterns.asymmetric_triangle in
  let plan = Plan.wco q [| 1; 2; 0 |] in
  (* Schema order follows the ordering: a2 a3 a1. *)
  Alcotest.(check (array int)) "schema" [| 1; 2; 0 |] (Plan.vars plan);
  match Exec.collect g plan with
  | [ t ] -> Alcotest.(check (array int)) "tuple in schema order" [| 1; 2; 0 |] t
  | l -> Alcotest.failf "expected 1 triangle, got %d" (List.length l)

let test_db_cypher_end_to_end () =
  let g = Generators.holme_kim (Rng.create 85) ~n:150 ~m_per:4 ~p_triad:0.5 ~recip:0.3 in
  let db = Graphflow.Db.create ~z:100 g in
  let q1, _ = Graphflow.Cypher.parse "MATCH (a)-->(b), (b)-->(c), (a)-->(c)" in
  let q2 = Graphflow.Db.parse_query "a->b, b->c, a->c" in
  check_int "cypher = dsl" (Graphflow.Db.count db q2) (Graphflow.Db.count db q1)

let suite =
  [
    ( "misc",
      [
        Alcotest.test_case "counters merge" `Quick test_counters_merge;
        Alcotest.test_case "timing" `Quick test_timing;
        Alcotest.test_case "graph io errors" `Quick test_graph_io_bad_files;
        Alcotest.test_case "ghd q10 (Appendix A)" `Quick test_ghd_q10_decomposition;
        Alcotest.test_case "ghd q9" `Quick test_ghd_q9_exists;
        Alcotest.test_case "parallel chunks" `Quick test_parallel_chunk_sizes;
        Alcotest.test_case "clique orientations" `Quick test_clique_orientations;
        Alcotest.test_case "catalog partitions" `Quick test_catalog_avg_partition_labeled;
        Alcotest.test_case "collect schema" `Quick test_exec_collect_schema;
        Alcotest.test_case "cypher end-to-end" `Quick test_db_cypher_end_to_end;
      ] );
  ]
