lib/adaptive/adaptive.ml: Array Float Gf_catalog Gf_exec Gf_graph Gf_opt Gf_plan Gf_query Gf_util Hashtbl List
