lib/adaptive/adaptive.mli: Gf_catalog Gf_exec Gf_graph Gf_plan Gf_query
