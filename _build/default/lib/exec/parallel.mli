(** Work-stealing parallel execution (Section 7).

    Every domain ("worker" in the paper) gets its own copy of the compiled
    plan and pulls ranges of the driving SCAN's source vertices from a
    shared queue, performing E/I extensions without coordination. The
    driving SCAN is found by following probe/child edges from the root: in
    a WCO plan it is the plan's only SCAN; in a hybrid plan each domain
    additionally builds its own copy of the hash tables (the paper instead
    shares a partitioned table — with [d >> w] partitions and locks — which
    matters only for build-heavy plans; Figure 11's queries are WCO).

    The graph is immutable and shared. Counters are per-domain and merged. *)

type report = {
  counters : Counters.t;
  per_domain_output : int array;  (** work division across domains *)
}

(** [run ~domains g plan] executes with that many domains. *)
val run : ?domains:int -> ?cache:bool -> ?chunk:int -> Gf_graph.Graph.t -> Gf_plan.Plan.t -> report
