module Key = struct
  type t = int array

  let equal (a : int array) b = a = b
  let hash (a : int array) = Hashtbl.hash a
end

module H = Hashtbl.Make (Key)

type t = {
  rows : Gf_util.Int_vec.t; (* concatenated rows, stride row_len *)
  index : Gf_util.Int_vec.t H.t; (* key -> row start offsets *)
  key_len : int;
  row_len : int;
  view : int array; (* reusable row view handed to iter_matches callbacks *)
  mutable count : int;
}

let create ~key_len ~row_len =
  {
    rows = Gf_util.Int_vec.create ~capacity:1024 ();
    index = H.create 1024;
    key_len;
    row_len;
    view = Array.make (max row_len 1) 0;
    count = 0;
  }

let add t key row =
  assert (Array.length key = t.key_len && Array.length row = t.row_len);
  let start = Gf_util.Int_vec.length t.rows in
  Gf_util.Int_vec.push_array t.rows row 0 t.row_len;
  (match H.find_opt t.index key with
  | Some offsets -> Gf_util.Int_vec.push offsets start
  | None ->
      let offsets = Gf_util.Int_vec.create ~capacity:4 () in
      Gf_util.Int_vec.push offsets start;
      H.replace t.index (Array.copy key) offsets);
  t.count <- t.count + 1

let size t = t.count

let iter_matches t key f =
  match H.find_opt t.index key with
  | None -> ()
  | Some offsets ->
      let data = Gf_util.Int_vec.data t.rows in
      Gf_util.Int_vec.iter
        (fun start ->
          Array.blit data start t.view 0 t.row_len;
          f t.view)
        offsets
