lib/exec/exec.ml: Array Counters Gf_graph Gf_plan Gf_query Gf_util Join_table List
