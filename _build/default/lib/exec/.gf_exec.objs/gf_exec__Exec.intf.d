lib/exec/exec.mli: Counters Gf_graph Gf_plan
