lib/exec/parallel.ml: Array Atomic Counters Domain Exec Gf_graph Gf_plan Gf_query
