lib/exec/parallel.mli: Counters Gf_graph Gf_plan
