lib/exec/join_table.mli:
