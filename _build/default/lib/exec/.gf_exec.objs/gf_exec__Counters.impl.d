lib/exec/counters.ml: Format List
