lib/exec/naive.mli: Gf_graph Gf_query
