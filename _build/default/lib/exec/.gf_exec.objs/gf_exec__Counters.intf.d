lib/exec/counters.mli: Format
