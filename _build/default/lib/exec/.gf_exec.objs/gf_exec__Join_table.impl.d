lib/exec/join_table.ml: Array Gf_util Hashtbl
