(** Hash table of fixed-stride integer rows keyed by integer tuples — the
    build side of HASH-JOIN. *)

type t

val create : key_len:int -> row_len:int -> t

(** [add t key row] stores a copy of [row] under a copy of [key]. *)
val add : t -> int array -> int array -> unit

val size : t -> int

(** [iter_matches t key f] applies [f row] to every stored row whose key
    equals [key]; [row] is a view that must not be retained across calls. *)
val iter_matches : t -> int array -> (int array -> unit) -> unit
