(** Reference matcher: straightforward backtracking over query vertices.

    Exponentially slower than the operator pipeline but obviously correct;
    the test suite checks every plan's output against it. [distinct]
    selects injective matches (subgraph isomorphism) instead of
    homomorphisms. *)

(** [count g q] is the number of matches of query [q] in [g]. *)
val count : ?distinct:bool -> Gf_graph.Graph.t -> Gf_query.Query.t -> int

(** [collect g q] lists all matches; tuple column [i] is the data vertex
    bound to query vertex [i]. *)
val collect : ?distinct:bool -> Gf_graph.Graph.t -> Gf_query.Query.t -> int array list
