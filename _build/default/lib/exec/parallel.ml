module Graph = Gf_graph.Graph
module Plan = Gf_plan.Plan

type report = { counters : Counters.t; per_domain_output : int array }

(* The SCAN that streams tuples into the root pipeline: probe side of joins,
   child of extends. *)
let rec driving_scan = function
  | Plan.Scan _ as s -> s
  | Plan.Extend { child; _ } -> driving_scan child
  | Plan.Hash_join { probe; _ } -> driving_scan probe

let run ?(domains = 1) ?(cache = true) ?(chunk = 64) g plan =
  let driver_node = driving_scan plan in
  let num_sources =
    match driver_node with
    | Plan.Scan { slabel; _ } -> Array.length (Graph.vertices_with_label g slabel)
    | _ -> assert false
  in
  let next = Atomic.make 0 in
  let worker () =
    let c = Counters.create () in
    let env = { Exec.g; cache; distinct = false; leapfrog = false; c } in
    (* Replace (physically) the driving scan with a chunk-pulling scan. *)
    let rewrite _recurse (env : Exec.env) node =
      match node with
      | Plan.Scan { edge; slabel; dlabel; _ } when node == driver_node ->
          let buf = Array.make 2 0 in
          Some
            (fun sink ->
              let continue = ref true in
              while !continue do
                let lo = Atomic.fetch_and_add next chunk in
                if lo >= num_sources then continue := false
                else begin
                  let hi = min num_sources (lo + chunk) in
                  Graph.iter_edges_range env.Exec.g ~elabel:edge.Gf_query.Query.label ~slabel
                    ~dlabel ~lo ~hi (fun u v ->
                      buf.(0) <- u;
                      buf.(1) <- v;
                      env.Exec.c.Counters.produced <- env.Exec.c.Counters.produced + 1;
                      sink buf)
                end
              done)
      | _ -> None
    in
    let driver = Exec.compile_rw rewrite env plan in
    driver (fun _ -> c.Counters.output <- c.Counters.output + 1);
    c
  in
  if domains <= 1 then begin
    let c = worker () in
    { counters = c; per_domain_output = [| c.Counters.output |] }
  end
  else begin
    let handles = Array.init domains (fun _ -> Domain.spawn worker) in
    let results = Array.map Domain.join handles in
    {
      counters = Counters.merge (Array.to_list results);
      per_domain_output = Array.map (fun c -> c.Counters.output) results;
    }
  end
