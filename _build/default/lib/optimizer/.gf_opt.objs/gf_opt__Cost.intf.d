lib/optimizer/cost.mli:
