lib/optimizer/cost_model.ml: Array Cost Float Gf_catalog Gf_graph Gf_query Gf_util Hashtbl List
