lib/optimizer/cost.ml: Float List
