lib/optimizer/cost_model.mli: Cost Gf_catalog Gf_query Gf_util
