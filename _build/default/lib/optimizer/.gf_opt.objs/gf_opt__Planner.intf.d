lib/optimizer/planner.mli: Cost Gf_catalog Gf_plan Gf_query
