lib/optimizer/planner.ml: Array Cost Cost_model Gf_catalog Gf_plan Gf_query Gf_util Hashtbl List Printf
