type weights = { w1 : float; w2 : float }

let default_weights = { w1 = 3.0; w2 = 1.0 }

let calibrate ~ei ~hj =
  (* Step 1: icost-per-second slope through the origin. *)
  let num = List.fold_left (fun acc (ic, t) -> acc +. (ic *. t)) 0.0 ei in
  let den = List.fold_left (fun acc (_, t) -> acc +. (t *. t)) 0.0 ei in
  if den <= 0.0 || num <= 0.0 then default_weights
  else begin
    let icost_per_sec = num /. den in
    (* Step 2: least squares of w1*n1 + w2*n2 = icost_per_sec * t.
       Normal equations for two variables. *)
    let s11 = ref 0.0 and s12 = ref 0.0 and s22 = ref 0.0 and b1 = ref 0.0 and b2 = ref 0.0 in
    List.iter
      (fun (n1, n2, t) ->
        let y = icost_per_sec *. t in
        s11 := !s11 +. (n1 *. n1);
        s12 := !s12 +. (n1 *. n2);
        s22 := !s22 +. (n2 *. n2);
        b1 := !b1 +. (n1 *. y);
        b2 := !b2 +. (n2 *. y))
      hj;
    let det = (!s11 *. !s22) -. (!s12 *. !s12) in
    if Float.abs det < 1e-9 then default_weights
    else begin
      let w1 = ((!s22 *. !b1) -. (!s12 *. !b2)) /. det in
      let w2 = ((!s11 *. !b2) -. (!s12 *. !b1)) /. det in
      if w1 > 0.0 && w2 > 0.0 then { w1; w2 } else default_weights
    end
  end
