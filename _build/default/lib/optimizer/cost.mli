(** HASH-JOIN cost normalization (Section 4.2).

    A HASH-JOIN hashing [n1] tuples and probing [n2] costs
    [w1 * n1 + w2 * n2] i-cost units. The weights are picked empirically:
    profiled [(i-cost, seconds)] pairs from E/I operators convert seconds
    into i-cost units, then [(n1, n2, seconds)] triples from HASH-JOIN
    operators are least-squares fitted. *)

type weights = { w1 : float; w2 : float }

(** Defaults used when no calibration has been run; hashing a tuple is
    treated as ~3x the cost of touching one adjacency-list entry. *)
val default_weights : weights

(** [calibrate ~ei ~hj] fits weights from profile logs: [ei] holds
    [(icost, seconds)] samples, [hj] holds [(n1, n2, seconds)] samples.
    Returns [default_weights] when either log is empty or degenerate. *)
val calibrate : ei:(float * float) list -> hj:(float * float * float) list -> weights
