lib/plan/plan.ml: Array Buffer Format Gf_graph Gf_query Gf_util List Printf String
