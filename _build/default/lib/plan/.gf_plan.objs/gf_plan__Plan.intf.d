lib/plan/plan.mli: Format Gf_graph Gf_query Gf_util
