(** Text serialization of graphs.

    Format:
    {v
    graphflow v1
    <num_vertices> <num_edges> <num_vlabels> <num_elabels>
    v <id> <vlabel>        (one line per vertex with nonzero label)
    e <src> <dst> <elabel> (one line per edge)
    v}
    Vertices absent from [v] lines have label 0. *)

val save : Graph.t -> string -> unit

(** [load path] parses a file written by [save]. Raises [Failure] with a
    descriptive message on malformed input. *)
val load : string -> Graph.t
