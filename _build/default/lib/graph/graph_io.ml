let save g path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "graphflow v1\n";
      Printf.fprintf oc "%d %d %d %d\n" (Graph.num_vertices g) (Graph.num_edges g)
        (Graph.num_vlabels g) (Graph.num_elabels g);
      for v = 0 to Graph.num_vertices g - 1 do
        let l = Graph.vlabel g v in
        if l <> 0 then Printf.fprintf oc "v %d %d\n" v l
      done;
      Array.iter
        (fun (u, v, el) -> Printf.fprintf oc "e %d %d %d\n" u v el)
        (Graph.edge_array g))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let fail msg = failwith (Printf.sprintf "Graph_io.load %s: %s" path msg) in
      let header = try input_line ic with End_of_file -> fail "empty file" in
      if header <> "graphflow v1" then fail "bad header";
      let n, m, nv, ne =
        match String.split_on_char ' ' (input_line ic) with
        | [ a; b; c; d ] -> (int_of_string a, int_of_string b, int_of_string c, int_of_string d)
        | _ -> fail "bad size line"
      in
      let vlabel = Array.make n 0 in
      let edges = ref [] in
      let count = ref 0 in
      (try
         while true do
           let line = input_line ic in
           if line <> "" then
             match String.split_on_char ' ' line with
             | [ "v"; id; l ] -> vlabel.(int_of_string id) <- int_of_string l
             | [ "e"; u; v; el ] ->
                 edges := (int_of_string u, int_of_string v, int_of_string el) :: !edges;
                 incr count
             | _ -> fail ("bad line: " ^ line)
         done
       with End_of_file -> ());
      if !count <> m then fail (Printf.sprintf "expected %d edges, got %d" m !count);
      Graph.build ~num_vlabels:nv ~num_elabels:ne ~vlabel ~edges:(Array.of_list !edges))
