(** Synthetic graph generators.

    The paper evaluates on SNAP datasets whose relevant differences are
    structural: degree skew (and its asymmetry between forward and backward
    lists), clustering coefficient (cyclicity), and size. These generators
    expose exactly those knobs; [dataset] instantiates named analogues of the
    paper's six graphs at container-friendly scale. All generators are
    deterministic given the [Rng.t]. *)

(** [erdos_renyi rng ~n ~m] draws [m] distinct directed edges uniformly. *)
val erdos_renyi : Gf_util.Rng.t -> n:int -> m:int -> Graph.t

(** [barabasi_albert rng ~n ~m_per ~recip] grows a preferential-attachment
    digraph: each new vertex emits [m_per] out-edges to targets chosen
    proportionally to in-degree (+1), giving web-like skewed *backward*
    lists and near-uniform forward lists. Each edge is reciprocated with
    probability [recip]. *)
val barabasi_albert : Gf_util.Rng.t -> n:int -> m_per:int -> recip:float -> Graph.t

(** [holme_kim rng ~n ~m_per ~p_triad ~recip] is Barabasi-Albert with triad
    formation: after each preferential edge, with probability [p_triad] the
    next edge closes a triangle through the previous target. High [p_triad]
    yields the high clustering coefficients of co-purchase/social graphs. *)
val holme_kim :
  ?max_out:int ->
  Gf_util.Rng.t ->
  n:int ->
  m_per:int ->
  p_triad:float ->
  recip:float ->
  Graph.t

(** [plant_cliques rng g ~count ~size] returns [g] plus [count] embedded
    cliques of [size] random vertices each (acyclic orientation). Real web
    graphs contain such dense subgraphs (link farms, boilerplate navigation),
    which is what makes the paper's 7-clique query Q14 satisfiable on
    Google; pure preferential-attachment graphs have none. *)
val plant_cliques : Gf_util.Rng.t -> Graph.t -> count:int -> size:int -> Graph.t

type dataset_name = Amazon | Epinions | Google | Berkstan | Livejournal | Twitter | Human

val dataset_name_of_string : string -> dataset_name option
val dataset_name_to_string : dataset_name -> string
val all_dataset_names : dataset_name list

(** [dataset ?scale name] builds the named analogue with a fixed seed.
    [scale] multiplies the vertex count (default 1.0 = the scaled-down
    defaults documented in DESIGN.md). [Human] is the 44-label dense graph
    used by the CFL comparison; the others are unlabeled (1 vertex label,
    1 edge label) like the paper's defaults. *)
val dataset : ?scale:float -> dataset_name -> Graph.t
