lib/graph/generators.mli: Gf_util Graph
