lib/graph/generators.ml: Array Gf_util Graph Hashtbl List
