lib/graph/graph.mli: Gf_util
