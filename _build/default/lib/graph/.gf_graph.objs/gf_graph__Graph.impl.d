lib/graph/graph.ml: Array Gf_util Hashtbl List
