lib/graph/stats.ml: Array Format Gf_util Graph Hashtbl List
