lib/graph/graph_io.ml: Array Fun Graph Printf String
