lib/graph/stats.mli: Format Gf_util Graph
