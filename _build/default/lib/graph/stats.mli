(** Structural statistics used to characterize datasets (Section 8.1.2 lists
    size, adjacency-list skew, and clustering coefficient as the properties
    that drive plan choice). *)

type summary = {
  num_vertices : int;
  num_edges : int;
  avg_out_degree : float;
  max_out_degree : int;
  max_in_degree : int;
  (* Skew = coefficient of variation (stddev / mean) of the degree
     distribution; the forward/backward contrast drives Table 4. *)
  out_degree_cv : float;
  in_degree_cv : float;
  avg_clustering : float; (* sampled average local (undirected) clustering *)
}

(** [summarize ?samples g] computes a summary; clustering is estimated from
    [samples] random vertices (default 2000). *)
val summarize : ?samples:int -> Graph.t -> summary

val pp_summary : Format.formatter -> summary -> unit

(** [count_triangles_sampled g rng ~samples] estimates the number of directed
    triangles [u -> v -> w, u -> w] from sampled edges. *)
val count_triangles_sampled : Graph.t -> Gf_util.Rng.t -> samples:int -> float
