module Rng = Gf_util.Rng

let unlabeled_vlabel n = Array.make n 0

let erdos_renyi rng ~n ~m =
  let seen = Hashtbl.create (2 * m) in
  let edges = ref [] in
  let count = ref 0 in
  while !count < m do
    let u = Rng.int rng n and v = Rng.int rng n in
    if u <> v then begin
      let key = (u * n) + v in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.replace seen key ();
        edges := (u, v, 0) :: !edges;
        incr count
      end
    end
  done;
  Graph.build ~num_vlabels:1 ~num_elabels:1 ~vlabel:(unlabeled_vlabel n)
    ~edges:(Array.of_list !edges)

(* Shared preferential-attachment engine. [triad u] optionally proposes a
   neighbour of the previous target to close a triangle. [max_out] bounds
   every vertex's out-degree: reciprocated edges otherwise turn in-degree
   hubs into out-degree hubs, which real co-purchase/web graphs do not have
   (e.g. SNAP Amazon caps out-degree at 10) and which make star-shaped
   query outputs astronomically large. *)
let preferential rng ~n ~m_per ~p_triad ~recip ?max_out () =
  let edges = ref [] in
  let out_deg = Array.make n 0 in
  let cap = match max_out with Some c -> c | None -> max_int in
  let add u v =
    if u <> v && out_deg.(u) < cap then begin
      edges := (u, v, 0) :: !edges;
      out_deg.(u) <- out_deg.(u) + 1;
      if Rng.float rng 1.0 < recip && out_deg.(v) < cap then begin
        edges := (v, u, 0) :: !edges;
        out_deg.(v) <- out_deg.(v) + 1
      end
    end
  in
  (* Pool of targets, each vertex repeated (in-degree + 1) times. *)
  let pool = Gf_util.Int_vec.create ~capacity:(4 * n * m_per) () in
  (* Out-neighbour lists kept for triad formation. *)
  let outs = Array.make n [] in
  let seed_size = max 2 (min n (m_per + 1)) in
  for v = 0 to seed_size - 1 do
    Gf_util.Int_vec.push pool v;
    if v > 0 then begin
      add v (v - 1);
      outs.(v) <- (v - 1) :: outs.(v);
      Gf_util.Int_vec.push pool (v - 1)
    end
  done;
  for v = seed_size to n - 1 do
    let last_target = ref (-1) in
    for _ = 1 to m_per do
      let target =
        if
          !last_target >= 0
          && outs.(!last_target) <> []
          && Rng.float rng 1.0 < p_triad
        then begin
          (* Triad formation: attach to a neighbour of the previous target. *)
          let nbrs = outs.(!last_target) in
          List.nth nbrs (Rng.int rng (List.length nbrs))
        end
        else Gf_util.Int_vec.get pool (Rng.int rng (Gf_util.Int_vec.length pool))
      in
      if target <> v then begin
        add v target;
        outs.(v) <- target :: outs.(v);
        Gf_util.Int_vec.push pool target;
        last_target := target
      end
    done;
    Gf_util.Int_vec.push pool v
  done;
  Graph.build ~num_vlabels:1 ~num_elabels:1 ~vlabel:(unlabeled_vlabel n)
    ~edges:(Array.of_list !edges)

let barabasi_albert rng ~n ~m_per ~recip =
  preferential rng ~n ~m_per ~p_triad:0.0 ~recip ()

let holme_kim ?max_out rng ~n ~m_per ~p_triad ~recip =
  preferential rng ~n ~m_per ~p_triad ~recip ?max_out ()

let plant_cliques rng g ~count ~size =
  let n = Graph.num_vertices g in
  let extra = ref [] in
  for _ = 1 to count do
    let members = Rng.sample_without_replacement rng ~n ~k:(min size n) in
    let k = Array.length members in
    for i = 0 to k - 1 do
      for j = i + 1 to k - 1 do
        extra := (members.(i), members.(j), 0) :: !extra
      done
    done
  done;
  Graph.build ~num_vlabels:(Graph.num_vlabels g) ~num_elabels:(Graph.num_elabels g)
    ~vlabel:(Array.init n (Graph.vlabel g))
    ~edges:(Array.append (Graph.edge_array g) (Array.of_list !extra))

type dataset_name = Amazon | Epinions | Google | Berkstan | Livejournal | Twitter | Human

let dataset_name_to_string = function
  | Amazon -> "amazon"
  | Epinions -> "epinions"
  | Google -> "google"
  | Berkstan -> "berkstan"
  | Livejournal -> "livejournal"
  | Twitter -> "twitter"
  | Human -> "human"

let all_dataset_names = [ Amazon; Epinions; Google; Berkstan; Livejournal; Twitter; Human ]

let dataset_name_of_string s =
  List.find_opt (fun d -> dataset_name_to_string d = s) all_dataset_names

let scaled scale n = max 64 (int_of_float (float_of_int n *. scale))

let dataset ?(scale = 1.0) name =
  let s = scaled scale in
  match name with
  | Amazon ->
      (* Product co-purchasing: moderate size, high clustering, small
         bounded out-degree (SNAP Amazon caps it at 10). *)
      holme_kim ~max_out:10 (Rng.create 101) ~n:(s 18_000) ~m_per:5 ~p_triad:0.5 ~recip:0.30
  | Epinions ->
      (* Who-trusts-whom social: smaller, skewed, some clustering. *)
      holme_kim (Rng.create 102) ~n:(s 8_000) ~m_per:7 ~p_triad:0.25 ~recip:0.25
  | Google ->
      (* Web: skewed in-degree, low reciprocity, plus a sprinkling of dense
         subgraphs (link farms) so large clique queries are satisfiable. *)
      let base = barabasi_albert (Rng.create 103) ~n:(s 22_000) ~m_per:6 ~recip:0.05 in
      plant_cliques (Rng.create 113) base
        ~count:(max 2 (s 22_000 / 900))
        ~size:9
  | Berkstan ->
      (* Web, heavier skew: larger m_per concentrates backward lists. *)
      barabasi_albert (Rng.create 104) ~n:(s 10_000) ~m_per:11 ~recip:0.02
  | Livejournal ->
      holme_kim (Rng.create 105) ~n:(s 50_000) ~m_per:9 ~p_triad:0.20 ~recip:0.40
  | Twitter -> barabasi_albert (Rng.create 106) ~n:(s 70_000) ~m_per:11 ~recip:0.10
  | Human ->
      (* Dense labeled graph standing in for the CFL paper's human PPI
         dataset: 4,674 vertices, ~86k edges, 44 vertex labels. *)
      let g = erdos_renyi (Rng.create 107) ~n:(s 4_674) ~m:(s 86_282) in
      Graph.relabel g (Rng.create 108) ~num_vlabels:44 ~num_elabels:1
