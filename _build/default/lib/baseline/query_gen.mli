(** Query workload generation by data-graph extraction.

    The CFL evaluation's query sets are random connected subgraphs *of the
    data graph* (so every query has at least one match): sparse sets keep
    average query-vertex degree <= 3, dense sets keep more of the induced
    edges. This module reproduces that protocol. *)

(** [from_data g rng ~num_vertices ~dense] grows a random connected vertex
    set by neighbour expansion and returns a query over its induced edges:
    all of them when [dense] (minus one direction of any reciprocal pair),
    a spanning tree plus a few extras when sparse. Vertex labels are copied
    from the data. Raises [Invalid_argument] when the graph has fewer than
    [num_vertices] vertices or the walk cannot grow (isolated region). *)
val from_data :
  Gf_graph.Graph.t -> Gf_util.Rng.t -> num_vertices:int -> dense:bool -> Gf_query.Query.t
