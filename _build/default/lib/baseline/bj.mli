(** Neo4j-style binary-join evaluation (Appendix D baseline).

    Queries are evaluated one query edge at a time with left-deep
    index-nested-loop joins: an edge sharing one endpoint with the bound
    prefix expands partial matches through a single adjacency list; an edge
    whose endpoints are both bound closes a cycle with an existence check.
    Open intermediate structures (e.g. open triangles) are therefore
    computed — exactly the plan class the paper's projection constraint
    excludes, and the reason BJ plans collapse on cyclic queries. *)

type stats = {
  matches : int;
  intermediate : int;  (** partial matches produced *)
  expansions : int;  (** adjacency entries touched by expand operators *)
}

(** [run g q] evaluates with the default greedy edge order (expansions
    before the closing checks they enable). [edge_order] overrides it with
    explicit edge indices into [q.edges]. [limit] stops early. *)
val run : ?edge_order:int list -> ?limit:int -> Gf_graph.Graph.t -> Gf_query.Query.t -> stats

val count : ?edge_order:int list -> Gf_graph.Graph.t -> Gf_query.Query.t -> int

(** [all_edge_orders q] enumerates the connected edge orders (prefix stays
    connected), for spectrum-style exploration. Capped at [max_orders]
    (default 5000). *)
val all_edge_orders : ?max_orders:int -> Gf_query.Query.t -> int list list
