(** CFL-style subgraph matching baseline (Appendix C).

    A backtracking matcher in the spirit of CFL [Bi et al., SIGMOD 2016]:
    the query is decomposed into a dense *core* (its 2-core) and a *forest*;
    the core is matched first (it has fewer matches), the forest last. A
    CPI-like candidate index filters candidates by vertex label and by
    forward/backward degree lower bounds before the search. Matches are
    injective on vertices (subgraph isomorphism), as in the CFL paper, and
    enumeration stops at [limit] matches, matching the Table 12 protocol.

    Simplifications relative to full CFL are documented in DESIGN.md: path
    cardinality estimation over the CPI is replaced by a
    smallest-candidate-set-first order, and postponed Cartesian products are
    not factorized (both sides are enumerated). *)

type stats = {
  matches : int;
  backtracks : int;
  candidates_checked : int;
  core_size : int;
}

val run : ?limit:int -> Gf_graph.Graph.t -> Gf_query.Query.t -> stats

val count : ?limit:int -> Gf_graph.Graph.t -> Gf_query.Query.t -> int

(** [core q] is the 2-core's vertex set (empty for trees). *)
val core : Gf_query.Query.t -> Gf_util.Bitset.t
