lib/baseline/query_gen.mli: Gf_graph Gf_query Gf_util
