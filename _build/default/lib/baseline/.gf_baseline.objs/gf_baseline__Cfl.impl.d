lib/baseline/cfl.ml: Array Gf_graph Gf_query Gf_util Hashtbl List
