lib/baseline/query_gen.ml: Array Gf_graph Gf_query Gf_util Hashtbl List
