lib/baseline/bj.mli: Gf_graph Gf_query
