lib/baseline/cfl.mli: Gf_graph Gf_query Gf_util
