(* Two-phase tableau simplex with Bland's rule (no cycling). The problem
   min c.x, A x >= b, x >= 0 is rewritten with surplus variables s >= 0 as
   A x - s = b and artificial variables r >= 0 (after flipping rows with
   negative b): phase 1 minimizes sum(r); phase 2 minimizes c.x. *)

let eps = 1e-9

type tableau = {
  t : float array array; (* m+1 rows, n+1 cols; last row = objective, last col = rhs *)
  basis : int array; (* basic variable per row *)
  m : int;
  n : int;
}

let pivot tb ~row ~col =
  let { t; m; n; basis } = tb in
  let p = t.(row).(col) in
  for j = 0 to n do
    t.(row).(j) <- t.(row).(j) /. p
  done;
  for i = 0 to m do
    if i <> row && Float.abs t.(i).(col) > eps then begin
      let f = t.(i).(col) in
      for j = 0 to n do
        t.(i).(j) <- t.(i).(j) -. (f *. t.(row).(j))
      done
    end
  done;
  basis.(row) <- col

(* Returns true at optimum, false if unbounded. [allowed] limits entering
   columns (used to block artificials in phase 2). *)
let rec iterate tb ~allowed =
  let { t; m; n; _ } = tb in
  (* Bland: smallest-index column with negative reduced cost. *)
  let col = ref (-1) in
  (try
     for j = 0 to n - 1 do
       if allowed j && t.(m).(j) < -.eps then begin
         col := j;
         raise Exit
       end
     done
   with Exit -> ());
  if !col < 0 then true
  else begin
    let c = !col in
    let row = ref (-1) in
    let best = ref infinity in
    for i = 0 to m - 1 do
      if t.(i).(c) > eps then begin
        let ratio = t.(i).(n) /. t.(i).(c) in
        if
          ratio < !best -. eps
          || (ratio < !best +. eps && (!row < 0 || tb.basis.(i) < tb.basis.(!row)))
        then begin
          best := ratio;
          row := i
        end
      end
    done;
    if !row < 0 then false
    else begin
      pivot tb ~row:!row ~col:c;
      iterate tb ~allowed
    end
  end

let minimize ~c ~a ~b =
  let m = Array.length b in
  let nx = Array.length c in
  if m = 0 then Some (0.0, Array.make nx 0.0)
  else begin
    (* Columns: x (nx) | surplus (m) | artificial (m) | rhs. *)
    let n = nx + m + m in
    let t = Array.make_matrix (m + 1) (n + 1) 0.0 in
    for i = 0 to m - 1 do
      let flip = b.(i) < 0.0 in
      let sgn = if flip then -1.0 else 1.0 in
      for j = 0 to nx - 1 do
        t.(i).(j) <- sgn *. a.(i).(j)
      done;
      t.(i).(nx + i) <- sgn *. -1.0;
      t.(i).(nx + m + i) <- 1.0;
      t.(i).(n) <- sgn *. b.(i)
    done;
    (* Phase-1 objective: sum of artificials, expressed over non-basic vars. *)
    for j = 0 to n do
      let s = ref 0.0 in
      for i = 0 to m - 1 do
        s := !s +. t.(i).(j)
      done;
      t.(m).(j) <- -. !s
    done;
    for i = 0 to m - 1 do
      t.(m).(nx + m + i) <- 0.0
    done;
    let tb = { t; basis = Array.init m (fun i -> nx + m + i); m; n } in
    if not (iterate tb ~allowed:(fun _ -> true)) then None
    else if Float.abs t.(m).(n) > 1e-6 then None (* infeasible *)
    else begin
      (* Drive remaining artificials out of the basis where possible. *)
      for i = 0 to m - 1 do
        if tb.basis.(i) >= nx + m then begin
          let found = ref (-1) in
          for j = 0 to nx + m - 1 do
            if !found < 0 && Float.abs t.(i).(j) > eps then found := j
          done;
          if !found >= 0 then pivot tb ~row:i ~col:!found
        end
      done;
      (* Phase-2 objective. *)
      for j = 0 to n do
        t.(m).(j) <- (if j < nx then c.(j) else 0.0)
      done;
      (* Express objective over the current basis. *)
      for i = 0 to m - 1 do
        let bv = tb.basis.(i) in
        if bv < nx && Float.abs t.(m).(bv) > eps then begin
          let f = t.(m).(bv) in
          for j = 0 to n do
            t.(m).(j) <- t.(m).(j) -. (f *. t.(i).(j))
          done
        end
      done;
      let allowed j = j < nx + m in
      if not (iterate tb ~allowed) then None
      else begin
        let x = Array.make nx 0.0 in
        for i = 0 to m - 1 do
          if tb.basis.(i) < nx then x.(tb.basis.(i)) <- t.(i).(n)
        done;
        let obj = Array.fold_left ( +. ) 0.0 (Array.mapi (fun j cj -> cj *. x.(j)) c) in
        Some (obj, x)
      end
    end
  end
