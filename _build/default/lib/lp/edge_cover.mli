(** Fractional edge covers — the AGM exponents that define GHD widths. *)

(** [fractional_cover q] is the minimum fractional edge cover number of the
    query's underlying hypergraph (each edge covers its two endpoints):
    1.5 for a triangle, k/2 for a k-clique, (k+1)/2 rounded suitably for odd
    cycles, etc. Raises [Invalid_argument] when some vertex is isolated. *)
val fractional_cover : Gf_query.Query.t -> float

(** [fractional_cover_subset q s] covers only the vertices in [s] using only
    the edges induced on [s]. *)
val fractional_cover_subset : Gf_query.Query.t -> Gf_util.Bitset.t -> float
