(** A small dense two-phase simplex solver, sized for fractional edge cover
    LPs (tens of variables and constraints). *)

(** [minimize ~c ~a ~b] solves: minimize [c . x] subject to [a x >= b],
    [x >= 0]. Returns [Some (objective, x)] at an optimum, [None] when
    infeasible. Unbounded problems cannot arise for covering LPs with
    [c >= 0] but are reported as [None] too. *)
val minimize : c:float array -> a:float array array -> b:float array -> (float * float array) option
