lib/lp/edge_cover.mli: Gf_query Gf_util
