lib/lp/edge_cover.ml: Array Gf_query Gf_util Hashtbl List Simplex
