lib/lp/simplex.mli:
