module Bitset = Gf_util.Bitset
module Query = Gf_query.Query

let fractional_cover_subset q s =
  let vertices = Bitset.to_array s in
  let edges = Query.edges_within q s in
  if edges = [] && Array.length vertices > 1 then
    invalid_arg "Edge_cover: no edges to cover with";
  let ne = List.length edges in
  if Array.length vertices = 0 then 0.0
  else if ne = 0 then invalid_arg "Edge_cover: isolated vertex"
  else begin
    let vidx = Hashtbl.create 8 in
    Array.iteri (fun i v -> Hashtbl.replace vidx v i) vertices;
    let m = Array.length vertices in
    let a = Array.make_matrix m ne 0.0 in
    List.iteri
      (fun j (e : Query.edge) ->
        a.(Hashtbl.find vidx e.src).(j) <- 1.0;
        a.(Hashtbl.find vidx e.dst).(j) <- 1.0)
      edges;
    let b = Array.make m 1.0 in
    let c = Array.make ne 1.0 in
    match Simplex.minimize ~c ~a ~b with
    | Some (obj, _) -> obj
    | None -> invalid_arg "Edge_cover: infeasible (isolated vertex)"
  end

let fractional_cover q = fractional_cover_subset q (Bitset.full (Query.num_vertices q))
