(** Textbook independence-assumption cardinality estimator, standing in for
    PostgreSQL in the Appendix B comparison.

    Each query edge is a relation over (src, dst); the estimate is the
    System-R formula: the product of per-edge cardinalities divided, for
    every query vertex shared by [d] edges, by the vertex-domain size raised
    to [d - 1]. No correlation between edges is modeled, which is exactly
    why it collapses on cyclic patterns. *)

val estimate : Gf_graph.Graph.t -> Gf_query.Query.t -> float
