(** Sampling-based cardinality estimation by random walks (wander-join
    style) — the "more advanced cardinality estimator based on sampling"
    that Section 10 lists as future work for the optimizer.

    A walk follows a WCO extension order: it draws a uniform random data
    edge for the scanned query edge, then at each E/I step draws a uniform
    member of the extension set. The inverse sampling probability — the
    product of the pool sizes along the walk — is an unbiased estimate of
    the match count; walks that die (empty extension set) contribute zero.
    Averaging many walks converges to |Q| with variance governed by the
    walk plan's skew. *)

(** [estimate g q ~walks rng] runs [walks] random walks. Returns 0 when the
    scanned edge has no matches. *)
val estimate : Gf_graph.Graph.t -> Gf_query.Query.t -> walks:int -> Gf_util.Rng.t -> float

(** [estimate_with_order] uses the given prefix-connected query vertex
    ordering instead of the default (the first connected ordering). *)
val estimate_with_order :
  Gf_graph.Graph.t -> Gf_query.Query.t -> order:int array -> walks:int -> Gf_util.Rng.t -> float
