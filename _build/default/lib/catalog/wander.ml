module Graph = Gf_graph.Graph
module Query = Gf_query.Query
module Int_vec = Gf_util.Int_vec
module Sorted = Gf_util.Sorted
module Rng = Gf_util.Rng

let estimate_with_order g q ~order ~walks rng =
  let k = Array.length order in
  assert (k = Query.num_vertices q);
  (* Position of each query vertex in the walk tuple. *)
  let pos = Array.make k (-1) in
  Array.iteri (fun i v -> pos.(v) <- i) order;
  let scan_edge =
    match
      Array.to_list q.Query.edges
      |> List.find_opt (fun (e : Query.edge) ->
             (e.src = order.(0) && e.dst = order.(1)) || (e.src = order.(1) && e.dst = order.(0)))
    with
    | Some e -> e
    | None -> invalid_arg "Wander: first two vertices not adjacent"
  in
  (* Pool of edges for the scan. *)
  let pool = ref [] in
  Graph.iter_edges g ~elabel:scan_edge.Query.label
    ~slabel:(Query.vlabel q scan_edge.Query.src)
    ~dlabel:(Query.vlabel q scan_edge.Query.dst)
    (fun u v -> pool := (u, v) :: !pool);
  let pool = Array.of_list !pool in
  if Array.length pool = 0 then 0.0
  else begin
    (* Extension descriptors per step, as (tuple position, dir, elabel). *)
    let steps =
      Array.init k (fun d ->
          if d < 2 then [||]
          else begin
            let target = order.(d) in
            Array.to_list q.Query.edges
            |> List.filter_map (fun (e : Query.edge) ->
                   if e.dst = target && pos.(e.src) < d then
                     Some (pos.(e.src), Graph.Fwd, e.label)
                   else if e.src = target && pos.(e.dst) < d then
                     Some (pos.(e.dst), Graph.Bwd, e.label)
                   else None)
            |> Array.of_list
          end)
    in
    let tuple = Array.make k 0 in
    let result = Int_vec.create () and scratch = Int_vec.create () in
    let total = ref 0.0 in
    for _ = 1 to walks do
      let u, v = pool.(Rng.int rng (Array.length pool)) in
      let a, b = if scan_edge.Query.src = order.(0) then (u, v) else (v, u) in
      tuple.(0) <- a;
      tuple.(1) <- b;
      let weight = ref (float_of_int (Array.length pool)) in
      (try
         for d = 2 to k - 1 do
           let target_label = Query.vlabel q order.(d) in
           let slices =
             Array.map
               (fun (p, dir, el) ->
                 Graph.neighbours g dir tuple.(p) ~elabel:el ~nlabel:target_label)
               steps.(d)
           in
           Int_vec.clear result;
           Sorted.intersect result slices ~scratch;
           let n = Int_vec.length result in
           if n = 0 then raise Exit;
           tuple.(d) <- Int_vec.get result (Rng.int rng n);
           weight := !weight *. float_of_int n
         done;
         total := !total +. !weight
       with Exit -> ())
    done;
    !total /. float_of_int walks
  end

let estimate g q ~walks rng =
  match Query.connected_orders q with
  | [] -> invalid_arg "Wander: disconnected query"
  | order :: _ -> estimate_with_order g q ~order ~walks rng
