module Graph = Gf_graph.Graph
module Query = Gf_query.Query

let estimate g q =
  let edge_card = ref 1.0 in
  Array.iter
    (fun (e : Query.edge) ->
      let c =
        Graph.count_edges g ~elabel:e.label ~slabel:(Query.vlabel q e.src)
          ~dlabel:(Query.vlabel q e.dst)
      in
      edge_card := !edge_card *. float_of_int c)
    q.Query.edges;
  let divisor = ref 1.0 in
  for v = 0 to Query.num_vertices q - 1 do
    let deg =
      Array.fold_left
        (fun acc (e : Query.edge) -> if e.src = v || e.dst = v then acc + 1 else acc)
        0 q.Query.edges
    in
    let domain = Array.length (Graph.vertices_with_label g (Query.vlabel q v)) in
    if deg > 1 && domain > 0 then
      divisor := !divisor *. (float_of_int domain ** float_of_int (deg - 1))
  done;
  if !divisor = 0.0 then 0.0 else !edge_card /. !divisor
