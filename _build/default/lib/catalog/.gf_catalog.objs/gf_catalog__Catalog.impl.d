lib/catalog/catalog.ml: Array Float Format Fun Gf_graph Gf_query Gf_util Hashtbl List Printf String
