lib/catalog/wander.mli: Gf_graph Gf_query Gf_util
