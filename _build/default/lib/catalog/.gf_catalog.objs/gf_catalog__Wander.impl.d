lib/catalog/wander.ml: Array Gf_graph Gf_query Gf_util List
