lib/catalog/catalog.mli: Format Gf_graph Gf_query
