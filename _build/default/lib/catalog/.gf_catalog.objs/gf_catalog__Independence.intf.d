lib/catalog/independence.mli: Gf_graph Gf_query
