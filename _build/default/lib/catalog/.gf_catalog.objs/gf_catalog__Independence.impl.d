lib/catalog/independence.ml: Array Gf_graph Gf_query
