(** EmptyHeaded emulation (Sections 1.1, 8.4 and Appendix A).

    EmptyHeaded plans are generalized hypertree decompositions: each bag is
    evaluated with Generic Join and materialized, then bags are joined up
    the tree with binary joins. The planner picks a minimum-width GHD, where
    a bag's width is its fractional edge cover number (its AGM exponent).
    EmptyHeaded does not optimize the query vertex orderings inside bags —
    it uses the lexicographic order of the user's variable names — which is
    the paper's EH-b ("bad") configuration; EH-g ("good") receives the
    orderings Graphflow's optimizer picks.

    Following Appendix A, only decompositions whose bags are *induced*
    sub-queries (the projection constraint) are enumerated; the paper
    verified EmptyHeaded's actual picks satisfy this for every benchmark
    query. Decompositions of up to 3 bags are considered, which covers every
    minimum-width decomposition of the <= 7-vertex benchmark queries. *)

type decomposition = {
  bags : Gf_util.Bitset.t array;
  tree : (int * int) list;  (** tree edges between bag indices *)
  width : float;
}

(** [decompositions q] enumerates valid decompositions (connected bags,
    every query edge inside a bag, running intersection property, no bag
    contained in another), minimum width first. *)
val decompositions : Gf_query.Query.t -> decomposition list

(** [min_width_decomposition q] is the first minimum-width decomposition
    (ties: fewest bags, then smallest total bag size). *)
val min_width_decomposition : Gf_query.Query.t -> decomposition

(** How to order query vertices inside each bag. *)
type ordering_mode =
  | Lexicographic  (** EmptyHeaded's default: variable-name order (EH-b uses the worst rewrite) *)
  | Best_estimated  (** Graphflow's orderings (EH-g) *)
  | Worst_estimated  (** adversarial rewrite: worst estimated orderings *)

(** [to_plan cat q d mode] builds the operator plan: per-bag WCO plans
    joined along the tree. *)
val to_plan :
  Gf_catalog.Catalog.t -> Gf_query.Query.t -> decomposition -> ordering_mode -> Gf_plan.Plan.t

(** [bag_orders q d] lists, per bag, every valid ordering — the axis of the
    EH spectra of Figure 9. *)
val bag_orders : Gf_query.Query.t -> decomposition -> int array list array

(** [plan_with_orders q d orders] builds the plan using the given per-bag
    orderings. *)
val plan_with_orders :
  Gf_query.Query.t -> decomposition -> int array array -> Gf_plan.Plan.t

val pp_decomposition : Format.formatter -> decomposition -> unit
