lib/ghd/ghd.mli: Format Gf_catalog Gf_plan Gf_query Gf_util
