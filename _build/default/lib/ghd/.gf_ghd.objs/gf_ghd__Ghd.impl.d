lib/ghd/ghd.ml: Array Float Format Gf_lp Gf_opt Gf_plan Gf_query Gf_util List Printf String
