module Bitset = Gf_util.Bitset
module Query = Gf_query.Query
module Plan = Gf_plan.Plan
module Planner = Gf_opt.Planner
module Edge_cover = Gf_lp.Edge_cover

type decomposition = {
  bags : Bitset.t array;
  tree : (int * int) list;
  width : float;
}

type ordering_mode = Lexicographic | Best_estimated | Worst_estimated

let edges_covered q bags =
  Array.for_all
    (fun (e : Query.edge) ->
      List.exists (fun b -> Bitset.mem e.src b && Bitset.mem e.dst b) (Array.to_list bags))
    q.Query.edges

(* Running intersection for a given tree: for every vertex, the bags that
   contain it must form a connected subtree. *)
let running_intersection bags tree =
  let nb = Array.length bags in
  let adj = Array.make nb [] in
  List.iter
    (fun (i, j) ->
      adj.(i) <- j :: adj.(i);
      adj.(j) <- i :: adj.(j))
    tree;
  let all_vertices = Array.fold_left Bitset.union Bitset.empty bags in
  let ok = ref true in
  Bitset.iter
    (fun v ->
      let holders = List.filter (fun i -> Bitset.mem v bags.(i)) (List.init nb (fun i -> i)) in
      match holders with
      | [] | [ _ ] -> ()
      | start :: _ ->
          (* BFS within holder bags only. *)
          let visited = Array.make nb false in
          let rec bfs frontier =
            match frontier with
            | [] -> ()
            | i :: rest ->
                let next =
                  List.filter
                    (fun j -> Bitset.mem v bags.(j) && not visited.(j))
                    adj.(i)
                in
                List.iter (fun j -> visited.(j) <- true) next;
                bfs (rest @ next)
          in
          visited.(start) <- true;
          bfs [ start ];
          List.iter (fun i -> if not visited.(i) then ok := false) holders)
    all_vertices;
  !ok

let decompositions q =
  let m = Query.num_vertices q in
  let full = Bitset.full m in
  let connected =
    List.filter
      (fun s -> Bitset.cardinal s >= 2 && Query.is_connected_subset q s)
      (List.init (full + 1) (fun s -> s))
  in
  let width bags =
    Array.fold_left (fun w b -> Float.max w (Edge_cover.fractional_cover_subset q b)) 0.0 bags
  in
  let acc = ref [] in
  (* 1 bag. *)
  acc := [ { bags = [| full |]; tree = []; width = width [| full |] } ];
  (* Acyclic queries: the width-1 join tree whose bags are the query edges
     (needs as many bags as edges, so it is added explicitly rather than
     through the bounded-bag enumeration below). *)
  let acyclic = Array.length q.Query.edges = m - 1 in
  if acyclic && m > 2 then begin
    let bags =
      Array.map (fun (e : Query.edge) -> Bitset.of_list [ e.src; e.dst ]) q.Query.edges
    in
    let nb = Array.length bags in
    (* Spanning tree of the bag-overlap graph: attach each bag to the first
       earlier bag sharing a vertex (exists since q is connected). *)
    let tree = ref [] in
    for i = 1 to nb - 1 do
      let j = ref (-1) in
      for k = 0 to i - 1 do
        if !j < 0 && Bitset.inter bags.(i) bags.(k) <> Bitset.empty then j := k
      done;
      if !j >= 0 then tree := (!j, i) :: !tree
    done;
    if List.length !tree = nb - 1 && running_intersection bags !tree then
      acc := { bags; tree = !tree; width = 1.0 } :: !acc
  end;
  (* 2 bags. *)
  List.iter
    (fun b1 ->
      List.iter
        (fun b2 ->
          if
            b1 < b2
            && Bitset.union b1 b2 = full
            && Bitset.inter b1 b2 <> Bitset.empty
            && (not (Bitset.subset b1 b2))
            && (not (Bitset.subset b2 b1))
            && edges_covered q [| b1; b2 |]
          then
            acc := { bags = [| b1; b2 |]; tree = [ (0, 1) ]; width = width [| b1; b2 |] } :: !acc)
        connected)
    connected;
  (* 3 bags, star trees (which include paths: a path is a star whose center
     is the middle bag). *)
  let carr = Array.of_list connected in
  let nc = Array.length carr in
  for i = 0 to nc - 1 do
    for j = i + 1 to nc - 1 do
      for k = j + 1 to nc - 1 do
        let b1 = carr.(i) and b2 = carr.(j) and b3 = carr.(k) in
        if
          Bitset.union (Bitset.union b1 b2) b3 = full
          && edges_covered q [| b1; b2; b3 |]
          && (not (Bitset.subset b1 b2))
          && (not (Bitset.subset b2 b1))
          && (not (Bitset.subset b1 b3))
          && (not (Bitset.subset b3 b1))
          && (not (Bitset.subset b2 b3))
          && (not (Bitset.subset b3 b2))
        then begin
          let bags = [| b1; b2; b3 |] in
          (* Try each bag as the center of a star tree. *)
          let rec try_center c =
            if c >= 3 then ()
            else begin
              let others = List.filter (fun x -> x <> c) [ 0; 1; 2 ] in
              let tree = List.map (fun o -> (c, o)) others in
              let overlaps =
                List.for_all (fun o -> Bitset.inter bags.(c) bags.(o) <> Bitset.empty) others
              in
              if overlaps && running_intersection bags tree then
                acc := { bags; tree; width = width bags } :: !acc
              else try_center (c + 1)
            end
          in
          try_center 0
        end
      done
    done
  done;
  List.sort
    (fun a b ->
      let wa = (a.width, Array.length a.bags, Array.fold_left (fun s x -> s + Bitset.cardinal x) 0 a.bags) in
      let wb = (b.width, Array.length b.bags, Array.fold_left (fun s x -> s + Bitset.cardinal x) 0 b.bags) in
      compare wa wb)
    !acc

let min_width_decomposition q =
  match decompositions q with
  | [] -> invalid_arg "Ghd: no decomposition"
  | d :: _ -> d

let bag_orders q d =
  Array.map
    (fun bag ->
      let sub, map = Query.induced q bag in
      Query.connected_orders sub |> List.map (fun o -> Array.map (fun i -> map.(i)) o))
    d.bags

let plan_with_orders q d orders =
  let nb = Array.length d.bags in
  if Array.length orders <> nb then invalid_arg "Ghd.plan_with_orders: arity";
  let bag_plan i = Plan.wco q orders.(i) in
  if nb = 1 then bag_plan 0
  else begin
    (* Join along the tree, starting from bag 0, always attaching a bag
       adjacent (in the tree) to the already-joined set. *)
    let joined = ref [ 0 ] in
    let plan = ref (bag_plan 0) in
    let remaining = ref (List.init (nb - 1) (fun i -> i + 1)) in
    while !remaining <> [] do
      let next =
        List.find
          (fun r ->
            List.exists
              (fun (a, b) -> (a = r && List.mem b !joined) || (b = r && List.mem a !joined))
              d.tree)
          !remaining
      in
      plan := Plan.hash_join q (bag_plan next) !plan;
      joined := next :: !joined;
      remaining := List.filter (( <> ) next) !remaining
    done;
    !plan
  end

let to_plan cat q d mode =
  let all = bag_orders q d in
  let orders =
    Array.map
      (fun candidates ->
        match candidates with
        | [] -> invalid_arg "Ghd.to_plan: empty bag"
        | _ -> (
            match mode with
            | Lexicographic ->
                List.fold_left
                  (fun best o -> if compare o best < 0 then o else best)
                  (List.hd candidates) candidates
            | Best_estimated | Worst_estimated ->
                let ranked =
                  List.map (fun o -> (o, Planner.wco_order_cost cat q o)) candidates
                in
                let pick cmp =
                  List.fold_left
                    (fun (bo, bc) (o, c) -> if cmp c bc then (o, c) else (bo, bc))
                    (List.hd ranked) (List.tl ranked)
                in
                fst (pick (if mode = Best_estimated then ( < ) else ( > )))))
      all
  in
  plan_with_orders q d orders

let pp_decomposition fmt d =
  Format.fprintf fmt "width=%.2f bags=[%s] tree=[%s]" d.width
    (String.concat "; "
       (Array.to_list d.bags
       |> List.map (fun b ->
              String.concat ","
                (List.map (fun v -> Printf.sprintf "a%d" (v + 1)) (Bitset.elements b)))))
    (String.concat "; " (List.map (fun (a, b) -> Printf.sprintf "%d-%d" a b) d.tree))
