(** Wall-clock timing helpers for the benchmark harness. *)

(** [time f] runs [f ()] and returns [(seconds, result)]. *)
val time : (unit -> 'a) -> float * 'a

(** [time_s f] is just the elapsed seconds. *)
val time_s : (unit -> unit) -> float
