(** Growable arrays of unboxed integers.

    Used pervasively as output buffers for intersections and as flat tuple
    storage; all operations are amortized O(1) and allocation-light. *)

type t

(** [create ?capacity ()] is an empty vector. *)
val create : ?capacity:int -> unit -> t

val length : t -> int

(** [get v i] is the [i]th element. Raises [Invalid_argument] when out of
    bounds. *)
val get : t -> int -> int

val set : t -> int -> int -> unit

(** [unsafe_get v i] skips the bounds check; only for hot inner loops whose
    indices are proved in range by construction. *)
val unsafe_get : t -> int -> int

val push : t -> int -> unit

(** [clear v] resets the length to 0 without releasing storage. *)
val clear : t -> unit

val is_empty : t -> bool

(** [data v] is the backing array; only indices [0 .. length v - 1] are
    meaningful. The array is invalidated by the next [push] that grows it. *)
val data : t -> int array

val to_array : t -> int array

val of_array : int array -> t

val iter : (int -> unit) -> t -> unit

val fold_left : ('a -> int -> 'a) -> 'a -> t -> 'a

(** [append dst src] pushes all elements of [src] onto [dst]. *)
val append : t -> t -> unit

(** [push_array dst a lo hi] pushes [a.(lo) .. a.(hi-1)] onto [dst]. *)
val push_array : t -> int array -> int -> int -> unit

(** [copy_from dst src] makes [dst] an exact copy of [src]'s contents,
    reusing [dst]'s storage when large enough. *)
val copy_from : t -> t -> unit

val pp : Format.formatter -> t -> unit
