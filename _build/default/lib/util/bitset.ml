type t = int

let empty = 0
let singleton i = 1 lsl i
let mem i s = s land (1 lsl i) <> 0
let add i s = s lor (1 lsl i)
let remove i s = s land lnot (1 lsl i)
let union a b = a lor b
let inter a b = a land b
let diff a b = a land lnot b

let cardinal s =
  let rec go s acc = if s = 0 then acc else go (s land (s - 1)) (acc + 1) in
  go s 0

let subset a b = a land b = a

let iter f s =
  let s = ref s in
  while !s <> 0 do
    let bit = !s land - !s in
    (* log2 of an isolated bit *)
    let rec idx b i = if b = 1 then i else idx (b lsr 1) (i + 1) in
    f (idx bit 0);
    s := !s land (!s - 1)
  done

let elements s =
  let acc = ref [] in
  iter (fun i -> acc := i :: !acc) s;
  List.rev !acc

let to_array s = Array.of_list (elements s)
let of_list l = List.fold_left (fun s i -> add i s) empty l
let full n = (1 lsl n) - 1

let fold_proper_nonempty_subsets f s init =
  (* Standard submask enumeration: (sub - 1) land s walks all submasks. *)
  let acc = ref init in
  let sub = ref ((s - 1) land s) in
  while !sub <> 0 do
    acc := f !sub !acc;
    sub := (!sub - 1) land s
  done;
  !acc

let min_elt s =
  if s = 0 then raise Not_found;
  let rec idx b i = if b land 1 = 1 then i else idx (b lsr 1) (i + 1) in
  idx s 0

let pp fmt s =
  Format.fprintf fmt "{%s}" (String.concat "," (List.map string_of_int (elements s)))
