(** Deterministic splitmix64 pseudo-random generator.

    Every sampler and graph generator in the repository takes an explicit
    [Rng.t] so that experiments are reproducible bit-for-bit across runs. *)

type t

(** [create seed] is a fresh generator; equal seeds give equal streams. *)
val create : int -> t

(** [split t] derives an independent generator from [t]'s stream. *)
val split : t -> t

(** [int t n] is uniform over [0, n). Requires [n > 0]. *)
val int : t -> int -> int

(** [int64 t] is the next raw 64-bit output. *)
val int64 : t -> int64

(** [float t x] is uniform over [0, x). *)
val float : t -> float -> float

val bool : t -> bool

(** [geometric t p] samples the number of failures before the first success of
    a Bernoulli(p) trial; used by skip-sampling generators. Requires
    [0 < p <= 1]. *)
val geometric : t -> float -> int

(** [shuffle t a] permutes [a] in place (Fisher-Yates). *)
val shuffle : t -> 'a array -> unit

(** [sample_without_replacement t ~n ~k] draws [k] distinct ints from [0, n),
    in ascending order. Requires [k <= n]. *)
val sample_without_replacement : t -> n:int -> k:int -> int array
