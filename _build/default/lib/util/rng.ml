type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = int64 t }

let int t n =
  if n <= 0 then invalid_arg "Rng.int";
  (* Rejection-free for our purposes: modulo bias is negligible for n << 2^63
     and determinism matters more than perfect uniformity here. *)
  Int64.to_int (Int64.rem (Int64.shift_right_logical (int64 t) 1) (Int64.of_int n))

let float t x =
  let u = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  x *. u /. 9007199254740992.0 (* 2^53 *)

let bool t = Int64.logand (int64 t) 1L = 1L

let geometric t p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Rng.geometric";
  if p >= 1.0 then 0
  else begin
    let u = ref (float t 1.0) in
    while !u <= 0.0 do
      u := float t 1.0
    done;
    int_of_float (Float.floor (log !u /. log (1.0 -. p)))
  end

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample_without_replacement t ~n ~k =
  if k > n then invalid_arg "Rng.sample_without_replacement";
  (* Floyd's algorithm keeps this O(k) in expectation. *)
  let chosen = Hashtbl.create (2 * k) in
  for j = n - k to n - 1 do
    let r = int t (j + 1) in
    if Hashtbl.mem chosen r then Hashtbl.replace chosen j ()
    else Hashtbl.replace chosen r ()
  done;
  let out = Array.make k 0 in
  let i = ref 0 in
  Hashtbl.iter
    (fun x () ->
      out.(!i) <- x;
      incr i)
    chosen;
  Array.sort compare out;
  out
