lib/util/sorted.mli: Int_vec
