lib/util/sorted.ml: Array Int_vec
