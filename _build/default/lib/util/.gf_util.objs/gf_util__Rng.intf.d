lib/util/rng.mli:
