lib/util/timing.mli:
