(** Subsets of [{0, ..., 61}] represented as the bits of an [int].

    Query vertex subsets (queries have at most ~20 vertices) are manipulated
    as bitsets throughout the optimizer's dynamic program. *)

type t = int

val empty : t
val singleton : int -> t
val mem : int -> t -> bool
val add : int -> t -> t
val remove : int -> t -> t
val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val cardinal : t -> int
val subset : t -> t -> bool

(** [iter f s] applies [f] to members in increasing order. *)
val iter : (int -> unit) -> t -> unit

val elements : t -> int list
val to_array : t -> int array
val of_list : int list -> t

(** [full n] is [{0, ..., n-1}]. *)
val full : int -> t

(** [fold_proper_nonempty_subsets f s init] folds over every subset [s'] of
    [s] with [s' <> empty] and [s' <> s]. *)
val fold_proper_nonempty_subsets : (t -> 'a -> 'a) -> t -> 'a -> 'a

(** [min_elt s] is the smallest member. Raises [Not_found] on empty. *)
val min_elt : t -> int

val pp : Format.formatter -> t -> unit
