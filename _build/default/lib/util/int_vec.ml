type t = { mutable data : int array; mutable len : int }

let create ?(capacity = 16) () =
  { data = Array.make (max capacity 1) 0; len = 0 }

let length v = v.len

let get v i =
  if i < 0 || i >= v.len then invalid_arg "Int_vec.get";
  Array.unsafe_get v.data i

let set v i x =
  if i < 0 || i >= v.len then invalid_arg "Int_vec.set";
  Array.unsafe_set v.data i x

let unsafe_get v i = Array.unsafe_get v.data i

let ensure v n =
  if n > Array.length v.data then begin
    let cap = ref (Array.length v.data) in
    while !cap < n do
      cap := !cap * 2
    done;
    let data = Array.make !cap 0 in
    Array.blit v.data 0 data 0 v.len;
    v.data <- data
  end

let push v x =
  ensure v (v.len + 1);
  Array.unsafe_set v.data v.len x;
  v.len <- v.len + 1

let clear v = v.len <- 0
let is_empty v = v.len = 0
let data v = v.data
let to_array v = Array.sub v.data 0 v.len

let of_array a =
  let v = create ~capacity:(max 1 (Array.length a)) () in
  Array.blit a 0 v.data 0 (Array.length a);
  v.len <- Array.length a;
  v

let iter f v =
  for i = 0 to v.len - 1 do
    f (Array.unsafe_get v.data i)
  done

let fold_left f init v =
  let acc = ref init in
  for i = 0 to v.len - 1 do
    acc := f !acc (Array.unsafe_get v.data i)
  done;
  !acc

let push_array dst a lo hi =
  let n = hi - lo in
  if n > 0 then begin
    ensure dst (dst.len + n);
    Array.blit a lo dst.data dst.len n;
    dst.len <- dst.len + n
  end

let append dst src = push_array dst src.data 0 src.len

let copy_from dst src =
  ensure dst src.len;
  Array.blit src.data 0 dst.data 0 src.len;
  dst.len <- src.len

let pp fmt v =
  Format.fprintf fmt "[@[";
  for i = 0 to v.len - 1 do
    if i > 0 then Format.fprintf fmt ";@ ";
    Format.fprintf fmt "%d" v.data.(i)
  done;
  Format.fprintf fmt "@]]"
