(** Plan spectra (Figures 7-9): enumerate the plan space of a query,
    execute every plan, and relate the optimizer's pick to the spectrum.

    WCO plans are enumerated exactly (every prefix-connected ordering,
    deduplicated by operator signature). BJ and hybrid plans are enumerated
    recursively over connected vertex subsets; because the hybrid space is
    exponential, at most [per_subset_cap] distinct-signature sub-plans are
    kept per subset and at most [family_cap] plans per family overall — the
    caps are reported so a spectrum never silently claims exhaustiveness. *)

type family = Wco | Bj | Hybrid

val family_to_string : family -> string

type entry = {
  plan : Gf_plan.Plan.t;
  family : family;
  seconds : float;
  counters : Gf_exec.Counters.t;
}

type t = {
  entries : entry list;
  capped : bool;  (** true when enumeration hit a cap *)
}

(** [plans q] enumerates the plan space (without running anything).
    [wco_cap] bounds the WCO family separately (orderings are cheap to
    enumerate exactly; default 128). *)
val plans :
  ?per_subset_cap:int ->
  ?family_cap:int ->
  ?wco_cap:int ->
  Gf_query.Query.t ->
  (family * Gf_plan.Plan.t) list * bool

(** [run g q] builds and executes the spectrum. [cache] is passed to the
    executor (Table 3 runs a spectrum with the cache off). *)
val run :
  ?per_subset_cap:int ->
  ?family_cap:int ->
  ?wco_cap:int ->
  ?cache:bool ->
  Gf_graph.Graph.t ->
  Gf_query.Query.t ->
  t

(** [summary spectrum ~picked_signature] formats one line per family:
    count, min / median / max runtime, and where the plan with the given
    signature (the optimizer's pick) falls. *)
val summary : t -> picked_signature:string -> string
