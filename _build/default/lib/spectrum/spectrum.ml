module Bitset = Gf_util.Bitset
module Query = Gf_query.Query
module Plan = Gf_plan.Plan
module Exec = Gf_exec.Exec
module Counters = Gf_exec.Counters

type family = Wco | Bj | Hybrid

let family_to_string = function Wco -> "W" | Bj -> "B" | Hybrid -> "H"

type entry = {
  plan : Plan.t;
  family : family;
  seconds : float;
  counters : Counters.t;
}

type t = { entries : entry list; capped : bool }

let rec count_ops = function
  | Plan.Scan _ -> (0, 0)
  | Plan.Extend { child; _ } ->
      let e, j = count_ops child in
      (e + 1, j)
  | Plan.Hash_join { build; probe; _ } ->
      let e1, j1 = count_ops build and e2, j2 = count_ops probe in
      (e1 + e2, j1 + j2 + 1)

let classify p =
  match count_ops p with
  | _, 0 -> Wco
  | 0, _ -> Bj
  | _, _ -> Hybrid

(* Signature that treats a join's children as unordered, so build/probe
   mirror images count as one plan shape. Within a fixed query, a target's
   descriptors are determined by the child's vertex set, so E(child; target)
   is a complete description. *)
let rec shape_signature = function
  | Plan.Scan _ as s -> Plan.signature s
  | Plan.Extend { child; target; _ } ->
      Printf.sprintf "E(%s;%d)" (shape_signature child) target
  | Plan.Hash_join { build; probe; _ } ->
      let a = shape_signature build and b = shape_signature probe in
      let x, y = if a <= b then (a, b) else (b, a) in
      Printf.sprintf "J(%s;%s)" x y

let plans ?(per_subset_cap = 8) ?(family_cap = 64) ?(wco_cap = 128) q =
  let m = Query.num_vertices q in
  let full = Bitset.full m in
  let capped = ref false in
  (* Exact WCO family from orderings, deduplicated by signature. *)
  let wco_plans =
    let seen = Hashtbl.create 32 in
    Query.connected_orders q
    |> List.filter_map (fun order ->
           let p = Plan.wco q order in
           let s = Plan.signature p in
           if Hashtbl.mem seen s then None
           else begin
             Hashtbl.replace seen s ();
             Some p
           end)
  in
  (* Recursive capped enumeration for plans containing joins. The [extends]
     switch gives a second, joins-only pass so the pure-BJ family is not
     starved out of the per-subset cap by E/I chains. *)
  let memo : (bool * Bitset.t, Plan.t list) Hashtbl.t = Hashtbl.create 64 in
  let rec plans_for ~extends s =
    match Hashtbl.find_opt memo (extends, s) with
    | Some l -> l
    | None ->
        let out = ref [] in
        let seen = Hashtbl.create 16 in
        let add p =
          if List.length !out >= per_subset_cap then capped := true
          else begin
            let sg = shape_signature p in
            if not (Hashtbl.mem seen sg) then begin
              Hashtbl.replace seen sg ();
              out := p :: !out
            end
          end
        in
        if Bitset.cardinal s = 2 then begin
          match Query.edges_within q s with
          | [ e ] -> add (Plan.scan q e)
          | _ -> ()
        end
        else begin
          (* Joins first: E/I chains are plentiful and would otherwise
             starve join-rooted shapes out of the per-subset cap.
             s1 proper nonempty connected, s2 = (s \ s1) + overlap. *)
          Bitset.fold_proper_nonempty_subsets
            (fun s1 () ->
              if Bitset.cardinal s1 >= 2 && Query.is_connected_subset q s1 then begin
                let rest = Bitset.diff s s1 in
                if rest <> Bitset.empty then begin
                  let o = ref s1 in
                  let continue = ref true in
                  while !continue do
                    let s2 = Bitset.union rest !o in
                    if s2 <> s && Bitset.cardinal s2 >= 2 && Query.is_connected_subset q s2
                    then begin
                      let covered =
                        List.for_all
                          (fun (e : Query.edge) ->
                            (Bitset.mem e.src s1 && Bitset.mem e.dst s1)
                            || (Bitset.mem e.src s2 && Bitset.mem e.dst s2))
                          (Query.edges_within q s)
                      in
                      if covered then
                        List.iter
                          (fun p1 ->
                            List.iter
                              (fun p2 -> add (Plan.hash_join q p1 p2))
                              (plans_for ~extends s2))
                          (plans_for ~extends s1)
                    end;
                    o := (!o - 1) land s1;
                    if !o = Bitset.empty then continue := false
                  done
                end
              end)
            s ();
          (* E/I extensions. *)
          if extends then
            Bitset.iter
              (fun v ->
                let child = Bitset.remove v s in
                if
                  Query.is_connected_subset q child
                  && Bitset.inter (Query.neighbours q v) child <> Bitset.empty
                then
                  List.iter (fun cp -> add (Plan.extend q cp v)) (plans_for ~extends child))
              s
        end;
        let l = List.rev !out in
        Hashtbl.replace memo (extends, s) l;
        l
  in
  let rec_plans = plans_for ~extends:true full in
  let bj_plans = plans_for ~extends:false full in
  let take_fam cap fam lst =
    let filtered = List.filter (fun p -> classify p = fam) lst in
    let rec take n = function
      | [] -> []
      | _ when n = 0 ->
          capped := true;
          []
      | x :: rest -> x :: take (n - 1) rest
    in
    take cap filtered
  in
  let bj = take_fam family_cap Bj bj_plans in
  let hybrid = take_fam family_cap Hybrid rec_plans in
  let wco = take_fam wco_cap Wco wco_plans in
  ( List.map (fun p -> (Wco, p)) wco
    @ List.map (fun p -> (Bj, p)) bj
    @ List.map (fun p -> (Hybrid, p)) hybrid,
    !capped )

let run ?per_subset_cap ?family_cap ?wco_cap ?(cache = true) g q =
  let all, capped = plans ?per_subset_cap ?family_cap ?wco_cap q in
  let entries =
    List.map
      (fun (family, plan) ->
        let seconds, counters = Gf_util.Timing.time (fun () -> Exec.run ~cache g plan) in
        { plan; family; seconds; counters })
      all
  in
  { entries; capped }

let summary spectrum ~picked_signature =
  let buf = Buffer.create 256 in
  let fams = [ Wco; Bj; Hybrid ] in
  List.iter
    (fun fam ->
      let es = List.filter (fun e -> e.family = fam) spectrum.entries in
      if es <> [] then begin
        let times = List.map (fun e -> e.seconds) es |> List.sort compare in
        let n = List.length times in
        let min_t = List.hd times
        and max_t = List.nth times (n - 1)
        and med = List.nth times (n / 2) in
        let picked =
          List.exists (fun e -> Plan.signature e.plan = picked_signature) es
        in
        Buffer.add_string buf
          (Printf.sprintf "%s(%d): min=%.4fs med=%.4fs max=%.4fs%s\n"
             (family_to_string fam) n min_t med max_t
             (if picked then "  <- optimizer pick in this family" else ""))
      end)
    fams;
  if spectrum.capped then Buffer.add_string buf "(enumeration capped)\n";
  Buffer.contents buf
