lib/spectrum/spectrum.mli: Gf_exec Gf_graph Gf_plan Gf_query
