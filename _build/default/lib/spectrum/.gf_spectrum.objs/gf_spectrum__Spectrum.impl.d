lib/spectrum/spectrum.ml: Buffer Gf_exec Gf_plan Gf_query Gf_util Hashtbl List Printf
