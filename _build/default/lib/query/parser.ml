let parse s =
  let fail msg = failwith (Printf.sprintf "Query parse error: %s (in %S)" msg s) in
  let items = String.split_on_char ',' s |> List.map String.trim |> List.filter (( <> ) "") in
  if items = [] then fail "empty query";
  let names = Hashtbl.create 8 in
  let next = ref 0 in
  let vertex name =
    if name = "" then fail "empty vertex name";
    String.iter
      (fun c ->
        if not ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_')
        then fail ("bad vertex name " ^ name))
      name;
    match Hashtbl.find_opt names name with
    | Some i -> i
    | None ->
        let i = !next in
        incr next;
        Hashtbl.replace names name i;
        i
  in
  let vlabels = Hashtbl.create 8 in
  let edges = ref [] in
  let parse_int what str =
    match int_of_string_opt (String.trim str) with
    | Some i when i >= 0 -> i
    | _ -> fail ("bad " ^ what ^ " " ^ str)
  in
  List.iter
    (fun item ->
      match String.index_opt item '>' with
      | Some gt when gt > 0 && item.[gt - 1] = '-' ->
          let lhs = String.trim (String.sub item 0 (gt - 1)) in
          let rhs = String.trim (String.sub item (gt + 1) (String.length item - gt - 1)) in
          let rhs_name, elabel =
            match String.index_opt rhs '@' with
            | None -> (rhs, 0)
            | Some at ->
                ( String.trim (String.sub rhs 0 at),
                  parse_int "edge label" (String.sub rhs (at + 1) (String.length rhs - at - 1)) )
          in
          let u = vertex lhs and v = vertex rhs_name in
          edges := Query.{ src = u; dst = v; label = elabel } :: !edges
      | _ -> (
          match String.index_opt item ':' with
          | Some colon ->
              let name = String.trim (String.sub item 0 colon) in
              let l =
                parse_int "vertex label"
                  (String.sub item (colon + 1) (String.length item - colon - 1))
              in
              Hashtbl.replace vlabels (vertex name) l
          | None -> fail ("expected edge or label declaration, got " ^ item)))
    items;
  let n = !next in
  if n = 0 then fail "no vertices";
  let vl = Array.init n (fun i -> Option.value ~default:0 (Hashtbl.find_opt vlabels i)) in
  let q =
    try Query.create ~num_vertices:n ~vlabels:vl ~edges:(Array.of_list (List.rev !edges)) ()
    with Invalid_argument m -> fail m
  in
  if not (Query.is_connected q) then fail "query is not connected";
  q
