(** Subgraph queries Q(V_Q, E_Q): directed, connected, with labels on query
    vertices and query edges (Section 2). Query vertices are integers
    [0 .. num_vertices - 1]; in printed form vertex [i] is [a(i+1)], matching
    the paper's [a1 ... am] notation. *)

type edge = { src : int; dst : int; label : int }

type t = private {
  num_vertices : int;
  vlabels : int array;
  edges : edge array;
}

(** [create ~num_vertices ~vlabels ~edges] validates ranges and duplicate
    edges. Raises [Invalid_argument] on malformed input ([vlabels] may be
    [None] for all-zero labels). *)
val create : num_vertices:int -> ?vlabels:int array -> edges:edge array -> unit -> t

(** [unlabeled_edges n pairs] is [create] from plain [(src, dst)] pairs with
    all labels 0. *)
val unlabeled_edges : int -> (int * int) list -> t

val num_vertices : t -> int
val num_edges : t -> int
val vlabel : t -> int -> int

(** [has_edge q i j] is true when the directed edge [i -> j] (any label)
    exists. *)
val has_edge : t -> int -> int -> bool

(** [adjacent q i j] ignores direction. *)
val adjacent : t -> int -> int -> bool

(** [neighbours q i] is the set of vertices adjacent to [i] (any
    direction). *)
val neighbours : t -> int -> Gf_util.Bitset.t

(** [edges_within q s] lists the edges with both endpoints in [s]. *)
val edges_within : t -> Gf_util.Bitset.t -> edge list

(** [is_connected_subset q s] checks connectivity of the subgraph induced by
    vertex set [s] (treating edges as undirected). Empty sets are not
    connected; singletons are. *)
val is_connected_subset : t -> Gf_util.Bitset.t -> bool

val is_connected : t -> bool

(** [induced q s] is the projection of [q] onto vertex set [s] — the
    sub-query written Q_k = Pi_{V_k} Q in the paper — together with the map
    from new vertex index to original vertex. Vertices keep their relative
    order. *)
val induced : t -> Gf_util.Bitset.t -> t * int array

(** [connected_orders q] enumerates the query vertex orderings whose every
    prefix of size >= 1 induces a connected sub-query — the valid QVOs of
    Generic Join (Section 2). *)
val connected_orders : t -> int array list

(** [connected_orders_extending q ~bound] enumerates orderings of the
    vertices outside [bound] such that each prefix extends connectivity from
    [bound]; used by the adaptive executor to enumerate candidate orderings
    given already-matched vertices. *)
val connected_orders_extending : t -> bound:Gf_util.Bitset.t -> int array list

(** [automorphisms q] is every permutation [p] (as an array, [p.(i)] = image
    of vertex [i]) preserving vertex labels and labeled directed edges. *)
val automorphisms : t -> int array list

(** [relabel_vertices q perm] renames vertex [i] to [perm.(i)]. *)
val relabel_vertices : t -> int array -> t

(** [equal q1 q2] is structural equality up to edge order. *)
val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string
