let u = Query.unlabeled_edges

let asymmetric_triangle = u 3 [ (0, 1); (1, 2); (0, 2) ]
let diamond_x = u 4 [ (0, 1); (0, 2); (1, 2); (1, 3); (2, 3) ]

(* Two directed 3-cycles sharing the edge a2->a3 (vertices 1->2 here):
   cycle 1: a1->a2->a3->a1; cycle 2: a2->a3->a4->a2. *)
let symmetric_diamond_x = u 4 [ (0, 1); (1, 2); (2, 0); (2, 3); (3, 1) ]

let tailed_triangle = u 4 [ (0, 1); (0, 2); (1, 2); (1, 3) ]

let clique k ~cyclic =
  (* Acyclic: i->j for i<j. Cyclic: the outer ring is rotated
     (0->1->...->k-1->0), chords stay i->j. *)
  let edges = ref [] in
  for i = 0 to k - 1 do
    for j = i + 1 to k - 1 do
      if cyclic && i = 0 && j = k - 1 then edges := (k - 1, 0) :: !edges
      else edges := (i, j) :: !edges
    done
  done;
  u k !edges

let cycle k = u k (List.init k (fun i -> (i, (i + 1) mod k)))
let path k = u k (List.init (k - 1) (fun i -> (i, i + 1)))

let q = function
  | 1 -> asymmetric_triangle
  | 2 -> cycle 4
  | 3 -> diamond_x
  | 4 -> symmetric_diamond_x
  | 5 -> clique 4 ~cyclic:false
  | 6 -> clique 4 ~cyclic:true
  | 7 -> clique 5 ~cyclic:false
  | 8 ->
      (* Bowtie: triangles (a1,a2,a3) and (a3,a4,a5) sharing a3. *)
      u 5 [ (0, 1); (1, 2); (0, 2); (2, 3); (3, 4); (2, 4) ]
  | 9 ->
      (* Two triangles sharing a3, closed through a6 (Figure 10's query). *)
      u 6 [ (0, 1); (1, 2); (0, 2); (2, 3); (3, 4); (2, 4); (0, 5); (4, 5) ]
  | 10 ->
      (* Diamond-X on (a1..a4) joined on a4 with triangle (a4,a5,a6). *)
      u 6 [ (0, 1); (0, 2); (1, 2); (1, 3); (2, 3); (3, 4); (4, 5); (3, 5) ]
  | 11 -> u 5 [ (0, 1); (0, 2); (0, 3); (0, 4) ]
  | 12 -> cycle 6
  | 13 -> u 6 [ (0, 1); (0, 2); (2, 3); (3, 4); (3, 5) ]
  | 14 -> clique 7 ~cyclic:false
  | i -> invalid_arg (Printf.sprintf "Patterns.q: no query Q%d" i)

let name i =
  if i >= 1 && i <= 14 then Printf.sprintf "Q%d" i
  else invalid_arg "Patterns.name"

let randomize_edge_labels rng q ~num_elabels =
  let edges =
    Array.map
      (fun e -> { e with Query.label = Gf_util.Rng.int rng num_elabels })
      q.Query.edges
  in
  Query.create ~num_vertices:q.Query.num_vertices ~vlabels:q.Query.vlabels ~edges ()

let random_query rng ~num_vertices ~dense ~num_vlabels =
  let n = num_vertices in
  let target_edges =
    if dense then n * 2 (* avg degree 4 *)
    else n + (n / 4)    (* avg degree ~2.5 *)
  in
  let edges = Hashtbl.create 32 in
  let add i j =
    let i, j, flip = if Gf_util.Rng.bool rng then (i, j, false) else (j, i, true) in
    ignore flip;
    if i <> j && not (Hashtbl.mem edges (i, j)) && not (Hashtbl.mem edges (j, i)) then
      Hashtbl.replace edges (i, j) ()
  in
  (* Random spanning tree first to guarantee connectivity. *)
  for v = 1 to n - 1 do
    add v (Gf_util.Rng.int rng v)
  done;
  let guard = ref 0 in
  while Hashtbl.length edges < target_edges && !guard < 100 * target_edges do
    incr guard;
    add (Gf_util.Rng.int rng n) (Gf_util.Rng.int rng n)
  done;
  let vlabels = Array.init n (fun _ -> Gf_util.Rng.int rng num_vlabels) in
  let edge_list =
    Hashtbl.fold (fun (i, j) () acc -> Query.{ src = i; dst = j; label = 0 } :: acc) edges []
  in
  Query.create ~num_vertices:n ~vlabels ~edges:(Array.of_list edge_list) ()
