(** The benchmark query set.

    [q 1] .. [q 14] are the fourteen queries of the paper's Figure 6 as
    reconstructed in DESIGN.md Section 4, plus the demonstration queries of
    Sections 3-4. All are unlabeled; [randomize_edge_labels] produces the
    Q^J_i labeled variants. *)

(** [q i] for [i] in [1 .. 14]. Raises [Invalid_argument] otherwise. *)
val q : int -> Query.t

val name : int -> string

(** Asymmetric triangle a1->a2, a2->a3, a1->a3 (Section 3.2.1; = Q1). *)
val asymmetric_triangle : Query.t

(** Diamond-X, the running example of Figure 1 (= Q3). *)
val diamond_x : Query.t

(** Symmetric diamond-X of Figure 2(a): two directed 3-cycles sharing an
    edge (= Q4). *)
val symmetric_diamond_x : Query.t

(** Tailed triangle of Figure 2(b). *)
val tailed_triangle : Query.t

(** [clique k ~cyclic] is a k-clique; acyclic orientation (i->j for i<j) or
    with the outer cycle reversed into a rotation when [cyclic]. *)
val clique : int -> cyclic:bool -> Query.t

(** [cycle k] is the directed k-cycle. *)
val cycle : int -> Query.t

(** [path k] is the directed k-vertex path. *)
val path : int -> Query.t

(** [randomize_edge_labels rng q ~num_elabels] assigns each query edge a
    uniform random label — the paper's Q^J_i construction. *)
val randomize_edge_labels : Gf_util.Rng.t -> Query.t -> num_elabels:int -> Query.t

(** [random_query rng ~num_vertices ~dense ~num_vlabels] draws a random
    connected query in the style of the CFL evaluation's query sets: average
    degree <= 3 when [dense] is false, > 3 when true; vertex labels drawn
    uniformly. *)
val random_query :
  Gf_util.Rng.t -> num_vertices:int -> dense:bool -> num_vlabels:int -> Query.t
