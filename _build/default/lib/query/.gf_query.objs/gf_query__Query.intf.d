lib/query/query.mli: Format Gf_util
