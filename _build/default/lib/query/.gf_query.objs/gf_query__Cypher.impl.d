lib/query/cypher.ml: Array Hashtbl List Option Printf Query String
