lib/query/patterns.ml: Array Gf_util Hashtbl List Printf Query
