lib/query/patterns.mli: Gf_util Query
