lib/query/parser.mli: Query
