lib/query/cypher.mli: Query
