lib/query/canon.ml: Array Buffer List Printf Query
