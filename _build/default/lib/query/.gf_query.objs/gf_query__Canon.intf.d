lib/query/canon.mli: Query
