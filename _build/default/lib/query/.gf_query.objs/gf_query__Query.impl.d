lib/query/query.ml: Array Format Gf_util Hashtbl List
