(** Canonical codes for small query patterns.

    The subgraph catalogue (Section 5) keys its entries by pattern shape:
    two extensions with isomorphic labeled sub-queries (and the same new
    vertex) must share an entry. [code] computes, by brute force over vertex
    permutations, a canonical string for a query, optionally distinguishing
    one vertex (the "new" vertex of an extension). Practical pattern sizes
    are <= h + 1 <= 5 vertices; anything up to 8 is accepted. *)

(** [code ?mark q] is [(canonical_string, perm)] where [perm.(i)] is the
    canonical position of original vertex [i]. When [mark] is given, that
    vertex is distinguished so it always occupies a fixed role in the code. *)
val code : ?mark:int -> Query.t -> string * int array

(** [iso ?mark1 ?mark2 q1 q2] tests labeled isomorphism (respecting marks). *)
val iso : ?mark1:int -> ?mark2:int -> Query.t -> Query.t -> bool
