(** A tiny textual pattern language for queries.

    Grammar (whitespace-insensitive):
    {v
    query := item (',' item)*
    item  := name ':' int            vertex label declaration
           | name '->' name tag?     directed query edge
    tag   := '@' int                 edge label (default 0)
    v}
    Vertex names are bound to indices 0, 1, ... in order of first
    appearance. Example: ["a1->a2, a2->a3, a1->a3"] is the asymmetric
    triangle; ["u:1, u->v@2"] labels vertex [u] with 1 and the edge with 2. *)

(** [parse s] raises [Failure] with a position message on syntax errors,
    duplicate edges, or unconnected queries. *)
val parse : string -> Query.t
