let encode_under q mark perm =
  (* perm.(i) = canonical position of original vertex i. *)
  let n = Query.num_vertices q in
  let vl = Array.make n 0 in
  for i = 0 to n - 1 do
    vl.(perm.(i)) <- Query.vlabel q i
  done;
  let edges =
    Array.to_list q.Query.edges
    |> List.map (fun e -> (perm.(e.Query.src), perm.(e.Query.dst), e.Query.label))
    |> List.sort compare
  in
  let buf = Buffer.create 64 in
  Buffer.add_string buf (string_of_int n);
  Buffer.add_char buf '|';
  Array.iter
    (fun l ->
      Buffer.add_string buf (string_of_int l);
      Buffer.add_char buf ',')
    vl;
  (match mark with
  | None -> Buffer.add_string buf "|-"
  | Some m ->
      Buffer.add_char buf '|';
      Buffer.add_string buf (string_of_int perm.(m)));
  List.iter
    (fun (s, d, l) -> Buffer.add_string buf (Printf.sprintf "|%d>%d@%d" s d l))
    edges;
  Buffer.contents buf

let rec perms_of = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x ->
          let rest = List.filter (fun y -> y <> x) l in
          List.map (fun p -> x :: p) (perms_of rest))
        l

let code ?mark q =
  let n = Query.num_vertices q in
  if n > 8 then invalid_arg "Canon.code: pattern too large";
  let best = ref None in
  List.iter
    (fun p ->
      (* p as list: position i holds original vertex p_i; invert it. *)
      let perm = Array.make n 0 in
      List.iteri (fun pos orig -> perm.(orig) <- pos) p;
      let s = encode_under q mark perm in
      match !best with
      | Some (bs, _) when bs <= s -> ()
      | _ -> best := Some (s, perm))
    (perms_of (List.init n (fun i -> i)));
  match !best with Some r -> r | None -> assert false

let iso ?mark1 ?mark2 q1 q2 =
  Query.num_vertices q1 = Query.num_vertices q2
  && Query.num_edges q1 = Query.num_edges q2
  && fst (code ?mark:mark1 q1) = fst (code ?mark:mark2 q2)
