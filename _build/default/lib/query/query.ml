module Bitset = Gf_util.Bitset

type edge = { src : int; dst : int; label : int }

type t = {
  num_vertices : int;
  vlabels : int array;
  edges : edge array;
}

let create ~num_vertices ?vlabels ~edges () =
  if num_vertices <= 0 || num_vertices > 60 then invalid_arg "Query.create: bad vertex count";
  let vlabels =
    match vlabels with
    | None -> Array.make num_vertices 0
    | Some v ->
        if Array.length v <> num_vertices then invalid_arg "Query.create: vlabels length";
        Array.copy v
  in
  let seen = Hashtbl.create 16 in
  Array.iter
    (fun { src; dst; label } ->
      if src < 0 || src >= num_vertices || dst < 0 || dst >= num_vertices then
        invalid_arg "Query.create: edge endpoint out of range";
      if src = dst then invalid_arg "Query.create: self loop";
      if label < 0 then invalid_arg "Query.create: negative edge label";
      let key = (src, dst, label) in
      if Hashtbl.mem seen key then invalid_arg "Query.create: duplicate edge";
      Hashtbl.replace seen key ())
    edges;
  { num_vertices; vlabels; edges = Array.copy edges }

let unlabeled_edges n pairs =
  create ~num_vertices:n
    ~edges:(Array.of_list (List.map (fun (s, d) -> { src = s; dst = d; label = 0 }) pairs))
    ()

let num_vertices q = q.num_vertices
let num_edges q = Array.length q.edges
let vlabel q i = q.vlabels.(i)

let has_edge q i j = Array.exists (fun e -> e.src = i && e.dst = j) q.edges
let adjacent q i j = has_edge q i j || has_edge q j i

let neighbours q i =
  Array.fold_left
    (fun acc e ->
      if e.src = i then Bitset.add e.dst acc
      else if e.dst = i then Bitset.add e.src acc
      else acc)
    Bitset.empty q.edges

let edges_within q s =
  Array.to_list q.edges |> List.filter (fun e -> Bitset.mem e.src s && Bitset.mem e.dst s)

let is_connected_subset q s =
  if s = Bitset.empty then false
  else begin
    let start = Bitset.min_elt s in
    let visited = ref (Bitset.singleton start) in
    let frontier = ref (Bitset.singleton start) in
    while !frontier <> Bitset.empty do
      let next = ref Bitset.empty in
      Bitset.iter
        (fun v ->
          let nb = Bitset.inter (neighbours q v) s in
          next := Bitset.union !next (Bitset.diff nb !visited))
        !frontier;
      visited := Bitset.union !visited !next;
      frontier := !next
    done;
    !visited = s
  end

let is_connected q = is_connected_subset q (Bitset.full q.num_vertices)

let induced q s =
  let members = Bitset.to_array s in
  let back = Array.make q.num_vertices (-1) in
  Array.iteri (fun i v -> back.(v) <- i) members;
  let vlabels = Array.map (fun v -> q.vlabels.(v)) members in
  let edges =
    Array.of_list
      (List.map
         (fun e -> { src = back.(e.src); dst = back.(e.dst); label = e.label })
         (edges_within q s))
  in
  (create ~num_vertices:(Array.length members) ~vlabels ~edges (), members)

let connected_orders_extending q ~bound =
  let n = q.num_vertices in
  let rest = Bitset.diff (Bitset.full n) bound in
  let k = Bitset.cardinal rest in
  let acc = ref [] in
  let order = Array.make k 0 in
  let rec go depth placed =
    if depth = k then acc := Array.copy order :: !acc
    else
      Bitset.iter
        (fun v ->
          if not (Bitset.mem v placed) then begin
            let connects =
              (* First vertex overall may start anywhere; otherwise it must
                 touch an already-placed or bound vertex. *)
              placed = Bitset.empty || Bitset.inter (neighbours q v) placed <> Bitset.empty
            in
            if connects then begin
              order.(depth) <- v;
              go (depth + 1) (Bitset.add v placed)
            end
          end)
        rest
  in
  go 0 bound;
  List.rev !acc

let connected_orders q = connected_orders_extending q ~bound:Bitset.empty

let rec permutations = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x ->
          let rest = List.filter (fun y -> y <> x) l in
          List.map (fun p -> x :: p) (permutations rest))
        l

let relabel_vertices q perm =
  let n = q.num_vertices in
  if Array.length perm <> n then invalid_arg "Query.relabel_vertices";
  let vlabels = Array.make n 0 in
  for i = 0 to n - 1 do
    vlabels.(perm.(i)) <- q.vlabels.(i)
  done;
  let edges =
    Array.map (fun e -> { src = perm.(e.src); dst = perm.(e.dst); label = e.label }) q.edges
  in
  create ~num_vertices:n ~vlabels ~edges ()

let canonical_edge_list q =
  Array.to_list q.edges |> List.map (fun e -> (e.src, e.dst, e.label)) |> List.sort compare

let equal q1 q2 =
  q1.num_vertices = q2.num_vertices
  && q1.vlabels = q2.vlabels
  && canonical_edge_list q1 = canonical_edge_list q2

let automorphisms q =
  let n = q.num_vertices in
  let idxs = List.init n (fun i -> i) in
  permutations idxs
  |> List.filter_map (fun p ->
         let perm = Array.of_list p in
         if equal (relabel_vertices q perm) q then Some perm else None)

let pp fmt q =
  Format.fprintf fmt "@[<h>";
  Array.iteri
    (fun i l -> if l <> 0 then Format.fprintf fmt "a%d:%d " (i + 1) l)
    q.vlabels;
  Array.iteri
    (fun i e ->
      if i > 0 then Format.fprintf fmt ", ";
      if e.label = 0 then Format.fprintf fmt "a%d->a%d" (e.src + 1) (e.dst + 1)
      else Format.fprintf fmt "a%d->a%d@@%d" (e.src + 1) (e.dst + 1) e.label)
    q.edges;
  Format.fprintf fmt "@]"

let to_string q = Format.asprintf "%a" pp q
