(* Recursive-descent parser for the MATCH pattern fragment. *)

type token =
  | Match
  | Lparen
  | Rparen
  | Lbracket
  | Rbracket
  | Colon
  | Comma
  | Dash (* - *)
  | Arrow_right (* -> *)
  | Arrow_left (* <- *)
  | Ident of string

let tokenize s =
  let fail msg = failwith (Printf.sprintf "Cypher parse error: %s (in %S)" msg s) in
  let n = String.length s in
  let tokens = ref [] in
  let i = ref 0 in
  let is_ident c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'
  in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\n' then incr i
    else if c = '(' then (tokens := Lparen :: !tokens; incr i)
    else if c = ')' then (tokens := Rparen :: !tokens; incr i)
    else if c = '[' then (tokens := Lbracket :: !tokens; incr i)
    else if c = ']' then (tokens := Rbracket :: !tokens; incr i)
    else if c = ':' then (tokens := Colon :: !tokens; incr i)
    else if c = ',' then (tokens := Comma :: !tokens; incr i)
    else if c = '-' then begin
      if !i + 1 < n && s.[!i + 1] = '>' then (tokens := Arrow_right :: !tokens; i := !i + 2)
      else (tokens := Dash :: !tokens; incr i)
    end
    else if c = '<' then begin
      if !i + 1 < n && s.[!i + 1] = '-' then (tokens := Arrow_left :: !tokens; i := !i + 2)
      else fail "stray '<'"
    end
    else if is_ident c then begin
      let j = ref !i in
      while !j < n && is_ident s.[!j] do
        incr j
      done;
      let word = String.sub s !i (!j - !i) in
      i := !j;
      if String.uppercase_ascii word = "MATCH" then tokens := Match :: !tokens
      else tokens := Ident word :: !tokens
    end
    else fail (Printf.sprintf "unexpected character %c" c)
  done;
  List.rev !tokens

type intern = { table : (string, int) Hashtbl.t; mutable next : int }

let intern t name =
  match Hashtbl.find_opt t.table name with
  | Some i -> i
  | None ->
      let i = t.next in
      t.next <- t.next + 1;
      Hashtbl.replace t.table name i;
      i

let parse s =
  let fail msg = failwith (Printf.sprintf "Cypher parse error: %s (in %S)" msg s) in
  let tokens = ref (tokenize s) in
  let peek () = match !tokens with t :: _ -> Some t | [] -> None in
  let next () =
    match !tokens with
    | t :: rest ->
        tokens := rest;
        t
    | [] -> fail "unexpected end of input"
  in
  let expect t what = if next () <> t then fail ("expected " ^ what) in
  let vars = { table = Hashtbl.create 8; next = 0 } in
  let labels = { table = Hashtbl.create 8; next = 0 } in
  let etypes = { table = Hashtbl.create 8; next = 0 } in
  let anon = ref 0 in
  let vlabels = Hashtbl.create 8 in
  let edges = ref [] in
  (* A label token is an integer (used directly) or a name (interned). *)
  let label_id pool = function
    | Ident w -> (
        match int_of_string_opt w with Some i when i >= 0 -> i | _ -> intern pool w)
    | _ -> fail "expected a label"
  in
  let parse_node () =
    expect Lparen "'('";
    let name =
      match peek () with
      | Some (Ident w) ->
          ignore (next ());
          w
      | _ ->
          incr anon;
          Printf.sprintf "$anon%d" !anon
    in
    let v = intern vars name in
    (match peek () with
    | Some Colon ->
        ignore (next ());
        Hashtbl.replace vlabels v (label_id labels (next ()))
    | _ -> ());
    expect Rparen "')'";
    v
  in
  (* edge := '-' ('[' ... ']')? '->'   |   '<-' ('[' ... ']')? '-' *)
  let parse_edge () =
    let bracket_type () =
      match peek () with
      | Some Lbracket ->
          ignore (next ());
          let t =
            match peek () with
            | Some Colon ->
                ignore (next ());
                label_id etypes (next ())
            | _ -> 0
          in
          expect Rbracket "']'";
          t
      | _ -> 0
    in
    match next () with
    | Dash ->
        let t = bracket_type () in
        (match next () with
        | Arrow_right -> `Out t
        | Dash -> fail "undirected edges are not supported; use -> or <-"
        | _ -> fail "expected '->'")
    | Arrow_right ->
        (* '-[..]->' tokenizes Dash then Arrow_right; bare '-->' tokenizes
           Dash Dash '>'... handled by Dash branch; a direct Arrow_right
           means '->' with no dash: accept as forward edge. *)
        `Out 0
    | Arrow_left ->
        let t = bracket_type () in
        expect Dash "'-'";
        `In t
    | _ -> fail "expected an edge"
  in
  let parse_pattern () =
    let v = ref (parse_node ()) in
    let rec chain () =
      match peek () with
      | Some (Dash | Arrow_left | Arrow_right) ->
          let e = parse_edge () in
          let w = parse_node () in
          (match e with
          | `Out t -> edges := (!v, w, t) :: !edges
          | `In t -> edges := (w, !v, t) :: !edges);
          v := w;
          chain ()
      | _ -> ()
    in
    chain ()
  in
  (match peek () with Some Match -> ignore (next ()) | _ -> ());
  parse_pattern ();
  let rec more () =
    match peek () with
    | Some Comma ->
        ignore (next ());
        (match peek () with Some Match -> ignore (next ()) | _ -> ());
        parse_pattern ();
        more ()
    | Some t ->
        ignore t;
        fail "trailing tokens"
    | None -> ()
  in
  more ();
  let n = vars.next in
  if n = 0 then fail "no vertices";
  let vl = Array.init n (fun i -> Option.value ~default:0 (Hashtbl.find_opt vlabels i)) in
  let q =
    try
      Query.create ~num_vertices:n ~vlabels:vl
        ~edges:
          (Array.of_list
             (List.rev_map (fun (a, b, t) -> Query.{ src = a; dst = b; label = t }) !edges))
        ()
    with Invalid_argument m -> fail m
  in
  if not (Query.is_connected q) then fail "pattern is not connected";
  let table = Hashtbl.fold (fun k v acc -> (k, v) :: acc) vars.table [] in
  (q, List.sort (fun (_, a) (_, b) -> compare a b) table)
