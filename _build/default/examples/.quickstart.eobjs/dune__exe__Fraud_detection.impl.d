examples/fraud_detection.ml: Array Format Graphflow List Printf String Unix
