examples/community.ml: Array Format Graphflow List Printf Unix
