examples/recommendation.mli:
