examples/quickstart.ml: Array Format Graphflow List Printf String
