examples/community.mli:
