examples/recommendation.ml: Array Format Graphflow List Printf Unix
