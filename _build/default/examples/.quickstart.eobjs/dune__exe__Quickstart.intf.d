examples/quickstart.mli:
