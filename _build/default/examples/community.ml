(* Community structure: cliques in a social network.

   Clique-like structures indicate communities (the paper cites Newman's
   community detection work). Densely cyclic queries are where worst-case
   optimal plans shine: binary-join plans cannot even express a clique
   under the projection constraint, and Neo4j-style BJ execution must
   enumerate enormous open intermediate results.

   This example counts 3- and 4-cliques, compares the WCO pipeline against
   the Neo4j-style binary-join baseline, and prints per-vertex clique
   participation as a community-ness score.

   Run with: dune exec examples/community.exe *)

module Gf = Graphflow

let () =
  (* A clustered social network. *)
  let g =
    Gf.Generators.holme_kim (Gf.Rng.create 4) ~n:8_000 ~m_per:6 ~p_triad:0.6 ~recip:0.4
  in
  Format.printf "social network: %a@." Gf.Graph_stats.pp_summary (Gf.Graph_stats.summarize g);

  let db = Gf.Db.create g in
  let triangle = Gf.Patterns.q 1 in
  let four_clique = Gf.Patterns.q 5 in

  (* WCO pipeline. *)
  List.iter
    (fun (label, q) ->
      let t0 = Unix.gettimeofday () in
      let c = Gf.Db.run db q in
      Printf.printf "%-10s %8d matches  %.3fs (graphflow, i-cost %d)\n" label
        c.Gf.Counters.output
        (Unix.gettimeofday () -. t0)
        c.Gf.Counters.icost)
    [ ("triangle", triangle); ("4-clique", four_clique) ];

  (* Neo4j-style binary joins on the same queries. *)
  List.iter
    (fun (label, q) ->
      let t0 = Unix.gettimeofday () in
      let s = Gf.Bj_baseline.run g q in
      Printf.printf "%-10s %8d matches  %.3fs (binary joins, %d intermediate)\n" label
        s.Gf.Bj_baseline.matches
        (Unix.gettimeofday () -. t0)
        s.Gf.Bj_baseline.intermediate)
    [ ("triangle", triangle); ("4-clique", four_clique) ];

  (* Community-ness: how many 4-cliques each vertex participates in. *)
  let participation = Array.make (Gf.Graph.num_vertices g) 0 in
  let (_ : Gf.Counters.t) =
    Gf.Db.run ~sink:(fun t -> Array.iter (fun v -> participation.(v) <- participation.(v) + 1) t)
      db four_clique
  in
  let ranked =
    Array.mapi (fun v n -> (n, v)) participation
    |> Array.to_list
    |> List.sort (fun a b -> compare b a)
  in
  print_endline "most clique-embedded vertices (vertex, 4-clique count):";
  List.iteri (fun i (n, v) -> if i < 5 then Printf.printf "  vertex %d: %d\n" v n) ranked
