(* Fraud detection: cyclic patterns in a transaction network.

   The paper's introduction motivates subgraph queries with fraud detection:
   money that flows around a cycle of accounts and returns to its origin is
   a classic laundering signal. We build a synthetic transaction network
   with two edge labels (0 = ordinary payment, 1 = high-value transfer) and
   hunt for cycles of high-value transfers.

   Cycles are exactly where binary-join planners collapse (they must build
   huge open paths before closing them); the hybrid optimizer closes cycles
   with multiway intersections instead.

   Run with: dune exec examples/fraud_detection.exe *)

module Gf = Graphflow

let () =
  let rng = Gf.Rng.create 42 in
  (* Transaction network: skewed (a few merchant hubs), sparsely cyclic. *)
  let base = Gf.Generators.barabasi_albert (Gf.Rng.create 2) ~n:20_000 ~m_per:4 ~recip:0.15 in
  (* 15% of transactions are high-value (label 1). *)
  let edges =
    Array.map
      (fun (u, v, _) -> (u, v, if Gf.Rng.float rng 1.0 < 0.15 then 1 else 0))
      (Gf.Graph.edge_array base)
  in
  let g =
    Gf.Graph.build ~num_vlabels:1 ~num_elabels:2
      ~vlabel:(Array.make (Gf.Graph.num_vertices base) 0)
      ~edges
  in
  Format.printf "transaction network: %a@." Gf.Graph_stats.pp_summary
    (Gf.Graph_stats.summarize g);

  let db = Gf.Db.create g in

  (* Rings of high-value transfers: a -> b -> c -> a and length-4 rings. *)
  let ring3 = Gf.Db.parse_query "a->b@1, b->c@1, c->a@1" in
  let ring4 = Gf.Db.parse_query "a->b@1, b->c@1, c->d@1, d->a@1" in
  (* A "round trip": high-value out, eventually back via two ordinary hops. *)
  let round_trip = Gf.Db.parse_query "a->b@1, b->c@0, c->a@0" in

  List.iter
    (fun (label, q) ->
      let t0 = Unix.gettimeofday () in
      let c = Gf.Db.run db q in
      Printf.printf "%-12s %6d suspicious structures (%.3fs, i-cost %d)\n" label
        c.Gf.Counters.output
        (Unix.gettimeofday () -. t0)
        c.Gf.Counters.icost)
    [ ("ring3", ring3); ("ring4", ring4); ("round-trip", round_trip) ];

  (* Show the accounts in a few rings. *)
  print_endline "sample rings:";
  let (_ : Gf.Counters.t) =
    Gf.Db.run ~limit:5
      ~sink:(fun t ->
        Printf.printf "  accounts %s\n"
          (String.concat " -> " (Array.to_list t |> List.map string_of_int)))
      db ring3
  in
  (* The plan: note the cycle is closed by an intersection, not a join. *)
  print_endline "--- ring4 plan ---";
  print_string (Gf.Db.explain db ring4)
