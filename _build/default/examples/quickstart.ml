(* Quickstart: build a graph, ask for a pattern, look at the plan.

   Run with: dune exec examples/quickstart.exe *)

module Gf = Graphflow

let () =
  (* A small synthetic social network: power-law degrees, lots of
     triangles. *)
  let g =
    Gf.Generators.holme_kim (Gf.Rng.create 1) ~n:5_000 ~m_per:5 ~p_triad:0.5 ~recip:0.3
  in
  Format.printf "graph: %a@." Gf.Graph_stats.pp_summary (Gf.Graph_stats.summarize g);

  (* A database session = graph + subgraph catalogue. *)
  let db = Gf.Db.create g in

  (* Queries are written as lists of directed edges. *)
  let triangle = Gf.Db.parse_query "a1->a2, a2->a3, a1->a3" in
  let diamond_x = Gf.Db.parse_query "a1->a2, a1->a3, a2->a3, a2->a4, a3->a4" in

  (* The optimizer picks a plan: look at it before running. *)
  print_endline "--- plan for the triangle ---";
  print_string (Gf.Db.explain db triangle);
  print_endline "--- plan for diamond-X ---";
  print_string (Gf.Db.explain db diamond_x);

  (* Execute. *)
  Printf.printf "triangles: %d\n" (Gf.Db.count db triangle);
  let c = Gf.Db.run db diamond_x in
  Printf.printf "diamond-X matches: %d (i-cost %d, cache hits %d)\n" c.Gf.Counters.output
    c.Gf.Counters.icost c.Gf.Counters.cache_hits;

  (* The first few matches, via a sink. *)
  let shown = ref 0 in
  let (_ : Gf.Counters.t) =
    Gf.Db.run ~limit:3
      ~sink:(fun t ->
        incr shown;
        Printf.printf "match %d: (%s)\n" !shown
          (String.concat ", " (Array.to_list t |> List.map string_of_int)))
      db triangle
  in
  ()
