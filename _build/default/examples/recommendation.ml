(* Recommendation: diamonds in a follower network.

   Twitter's recommendation pipeline searches for "diamonds" in the
   follower graph (the paper's introduction cites exactly this use case):
   when a1 follows a2 and a3, and both follow a4, then a4 is a strong
   recommendation for a1. This example finds diamond instances and ranks
   recommendation candidates by how many diamonds support them.

   It also demonstrates that the optimizer picks different plan families for
   different patterns on the same graph, and shows adaptive execution.

   Run with: dune exec examples/recommendation.exe *)

module Gf = Graphflow

let () =
  (* Follower network: heavy-tailed in-degrees (celebrities). *)
  let g = Gf.Generators.barabasi_albert (Gf.Rng.create 3) ~n:3_000 ~m_per:4 ~recip:0.2 in
  Format.printf "follower network: %a@." Gf.Graph_stats.pp_summary
    (Gf.Graph_stats.summarize g);

  let db = Gf.Db.create g in

  (* The diamond: a1 -> {a2, a3} -> a4. *)
  let diamond = Gf.Db.parse_query "a1->a2, a1->a3, a2->a4, a3->a4" in
  print_endline "--- diamond plan ---";
  print_string (Gf.Db.explain db diamond);

  (* Group matches by (a1, a4): how many diamonds support recommending a4
     to a1. *)
  let t0 = Unix.gettimeofday () in
  let support = Gf.Db.count_by db diamond ~key:[ 0; 3 ] in
  Printf.printf "grouped %d (user, candidate) pairs in %.3fs\n" (List.length support)
    (Unix.gettimeofday () -. t0);

  (* Top recommendations: pairs with the most supporting diamonds, where a1
     does not already follow a4. *)
  let ranked =
    support
    |> List.filter (fun (k, _) ->
           (* drop self-recommendations (homomorphic matches allow a1 = a4)
              and candidates the user already follows *)
           k.(0) <> k.(1) && not (Gf.Graph.has_edge g k.(0) k.(1) ~elabel:0))
  in
  print_endline "top recommendations (user <- candidate, supporting diamonds):";
  List.iteri
    (fun i (k, n) ->
      if i < 5 then Printf.printf "  user %d -> candidate %d (%d diamonds)\n" k.(0) k.(1) n)
    ranked;

  (* Adaptive execution: same answer, work can differ per start edge. *)
  let fixed = Gf.Db.run db diamond in
  let adaptive = Gf.Db.run ~adaptive:true db diamond in
  Printf.printf "fixed i-cost %d vs adaptive i-cost %d (same %d matches)\n"
    fixed.Gf.Counters.icost adaptive.Gf.Counters.icost adaptive.Gf.Counters.output
