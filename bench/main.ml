(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 8 and Appendices B-D) on the synthetic dataset
   analogues, plus the ablations DESIGN.md calls out.

   Usage:
     dune exec bench/main.exe                 -- run everything
     dune exec bench/main.exe -- --only table3,figure7
     dune exec bench/main.exe -- --list
     GF_BENCH_SCALE=0.1 dune exec bench/main.exe

   Output convention per experiment: the paper's rows with our measured
   values; absolute numbers differ from the paper (different hardware,
   dataset scale), the *shape* is what EXPERIMENTS.md tracks. *)

module Gf = Graphflow
open Bench_data

(* ------------------------------------------------------------------ *)
(* Table 3: intersection cache on/off across diamond-X WCO plans.      *)
(* ------------------------------------------------------------------ *)

let table3 () =
  header "Table 3: intersection cache utility (diamond-X, amazon)";
  let g = dataset Gf.Generators.Amazon in
  let cat = catalog g in
  let q = Gf.Patterns.diamond_x in
  let orders = Gf.Planner.all_wco_orders cat q |> List.map fst in
  let rows =
    List.map
      (fun o ->
        let plan = Gf.Plan.wco q o in
        let t_on, c_on = time_warm (fun () -> Gf.Exec.run ~cache:true g plan) in
        let t_off, _ = time_warm (fun () -> Gf.Exec.run ~cache:false g plan) in
        (o, t_on, t_off, c_on.Gf.Counters.cache_hits))
      orders
  in
  let rows = List.sort (fun (_, a, _, _) (_, b, _, _) -> compare a b) rows in
  Printf.printf "%-14s %10s %10s %12s\n" "QVO" "cache on" "cache off" "cache hits";
  List.iter
    (fun (o, ton, toff, hits) ->
      Printf.printf "%-14s %9.3fs %9.3fs %12s\n" (order_name o) ton toff (fmt_count hits))
    rows;
  let used = List.filter (fun (_, _, _, h) -> h > 0) rows in
  let best_ratio =
    List.fold_left (fun acc (_, ton, toff, _) -> Float.max acc (toff /. ton)) 1.0 used
  in
  Printf.printf "plans using the cache: %d of %d; best speedup from caching: %.1fx\n"
    (List.length used) (List.length rows) best_ratio

(* ------------------------------------------------------------------ *)
(* Table 4: adjacency list direction effects (asymmetric triangle).    *)
(* ------------------------------------------------------------------ *)

let table4 () =
  header "Table 4: QVO direction effects (asymmetric triangle)";
  let q = Gf.Patterns.asymmetric_triangle in
  List.iter
    (fun (label, name) ->
      let g = dataset name in
      subheader label;
      Printf.printf "%-10s %10s %12s %14s\n" "QVO" "time" "part. m." "i-cost";
      let rows =
        List.map
          (fun o ->
            let plan = Gf.Plan.wco q o in
            let t, c = time_warm (fun () -> Gf.Exec.run g plan) in
            (o, t, c))
          (List.map fst (Gf.Planner.all_wco_orders (catalog g) q))
      in
      List.iter
        (fun (o, t, c) ->
          Printf.printf "%-10s %9.3fs %12s %14s\n" (order_name o) t
            (fmt_count (Gf.Counters.intermediate c))
            (fmt_count c.Gf.Counters.icost))
        (List.sort (fun (_, a, _) (_, b, _) -> compare a b) rows))
    [ ("berkstan", Gf.Generators.Berkstan); ("livejournal", Gf.Generators.Livejournal) ]

(* ------------------------------------------------------------------ *)
(* Table 5: intermediate-result effects (tailed triangle, cache off).  *)
(* ------------------------------------------------------------------ *)

let table5 () =
  header "Table 5: EDGE-TRIANGLE vs EDGE-2PATH (tailed triangle, cache off)";
  let q = Gf.Patterns.tailed_triangle in
  List.iter
    (fun (label, name) ->
      let g = dataset name in
      subheader label;
      Printf.printf "%-12s %-14s %10s %12s %14s\n" "QVO" "family" "time" "part. m." "i-cost";
      let rows =
        List.map
          (fun o ->
            let plan = Gf.Plan.wco q o in
            let t, c = time_warm (fun () -> Gf.Exec.run ~cache:false g plan) in
            (* EDGE-TRIANGLE plans close the triangle (vertex a3 = 2) before
               matching the tail (a4 = 3). *)
            let fam =
              let pos v =
                let p = ref (-1) in
                Array.iteri (fun i x -> if x = v then p := i) o;
                !p
              in
              if pos 2 < pos 3 then "EDGE-TRIANGLE" else "EDGE-2PATH"
            in
            (o, fam, t, c))
          (List.map fst (Gf.Planner.all_wco_orders (catalog g) q))
      in
      List.iter
        (fun (o, fam, t, c) ->
          Printf.printf "%-12s %-14s %9.3fs %12s %14s\n" (order_name o) fam t
            (fmt_count (Gf.Counters.intermediate c))
            (fmt_count c.Gf.Counters.icost))
        (List.sort (fun (_, _, a, _) (_, _, b, _) -> compare a b) rows))
    [ ("amazon", Gf.Generators.Amazon); ("epinions", Gf.Generators.Epinions) ]

(* ------------------------------------------------------------------ *)
(* Table 6: intersection cache hits (symmetric diamond-X).             *)
(* ------------------------------------------------------------------ *)

let table6 () =
  header "Table 6: cache-utilization QVO groups (symmetric diamond-X)";
  let q = Gf.Patterns.symmetric_diamond_x in
  List.iter
    (fun (label, name) ->
      let g = dataset name in
      subheader label;
      Printf.printf "%-12s %10s %12s %14s %12s\n" "QVO" "time" "part. m." "i-cost" "cache hits";
      List.iter
        (fun o ->
          let plan = Gf.Plan.wco q o in
          let t, c = time_warm (fun () -> Gf.Exec.run g plan) in
          Printf.printf "%-12s %9.3fs %12s %14s %12s\n" (order_name o) t
            (fmt_count (Gf.Counters.intermediate c))
            (fmt_count c.Gf.Counters.icost)
            (fmt_count c.Gf.Counters.cache_hits))
        [ [| 1; 2; 0; 3 |] (* a2a3a1a4: cache-friendly group *); [| 0; 1; 2; 3 |] (* a1a2a3a4 *) ])
    [ ("amazon", Gf.Generators.Amazon); ("epinions", Gf.Generators.Epinions) ]

(* ------------------------------------------------------------------ *)
(* Table 7: a sample of the subgraph catalogue.                        *)
(* ------------------------------------------------------------------ *)

let table7 () =
  header "Table 7: subgraph catalogue sample (epinions, 2 vertex / 2 edge labels)";
  let g =
    Gf.Graph.relabel (dataset Gf.Generators.Epinions) (Gf.Rng.create 4000) ~num_vlabels:2
      ~num_elabels:2
  in
  let cat = Gf.Catalog.create ~z:500 g in
  let show desc qk new_vertex =
    match Gf.Catalog.entry cat qk ~new_vertex with
    | None -> ()
    | Some e -> Format.printf "%-46s %a@." desc Gf.Catalog.pp_entry e
  in
  let q s = Gf.Db.parse_query s in
  show "(1:l0 -e0-> 2:l1 ; fwd(2); 3:l0)" (q "a:0, b:1, c:0, a->b@0, b->c@0") 2;
  show "(1:l0 -e0-> 2:l1 ; fwd(2); 3:l1)" (q "a:0, b:1, c:1, a->b@0, b->c@0") 2;
  show "(1:l0 -e0-> 2:l1 ; fwd(2)@e1; 3:l0)" (q "a:0, b:1, c:0, a->b@0, b->c@1") 2;
  show "(1:l0 -e0-> 2:l0 ; fwd(1), fwd(2); 3:l0)" (q "a:0, b:0, c:0, a->b@0, a->c@0, b->c@0") 2;
  show "(1:l0 -e0-> 2:l0 ; bwd(1), bwd(2); 3:l0)" (q "a:0, b:0, c:0, a->b@0, c->a@0, c->b@0") 2

(* ------------------------------------------------------------------ *)
(* Figure 7: plan spectra and the optimizer's pick.                    *)
(* ------------------------------------------------------------------ *)

let spectrum_datasets () =
  [
    ("amazon (unlabeled)", dataset_at (Gf.Generators.Amazon, spectrum_scale), 1);
    ("epinions (3 labels)", labeled (Gf.Generators.Epinions, spectrum_scale, 3), 3);
    ("google (5 labels)", labeled (Gf.Generators.Google, spectrum_scale, 5), 5);
  ]

let figure7 () =
  header "Figure 7: plan spectra; x = optimizer pick";
  let queries = [ 1; 2; 3; 4; 5; 6; 7; 8; 11; 12; 13 ] in
  let within_opt = ref 0 and total = ref 0 and within14 = ref 0 and within2 = ref 0 in
  let max_plan_time = ref 0.0 in
  List.iter
    (fun (dlabel, g, nl) ->
      let cat = catalog g in
      subheader dlabel;
      List.iter
        (fun i ->
          let q = if nl = 1 then Gf.Patterns.q i else labeled_query i nl in
          match time_once (fun () -> Gf.Planner.plan cat q) with
          | exception Gf.Planner.No_plan _ -> ()
          | plan_time, (picked, _) ->
              max_plan_time := Float.max !max_plan_time plan_time;
              let s = Gf.Spectrum.run ~per_subset_cap:4 ~family_cap:12 g q in
              let times = List.map (fun e -> e.Gf.Spectrum.seconds) s.Gf.Spectrum.entries in
              let tmin = List.fold_left Float.min infinity times in
              let tmax = List.fold_left Float.max 0.0 times in
              let tpick, _ = time_warm (fun () -> Gf.Exec.run g picked) in
              let fam f =
                List.length (List.filter (fun e -> e.Gf.Spectrum.family = f) s.Gf.Spectrum.entries)
              in
              incr total;
              let ratio = tpick /. Float.max tmin 1e-6 in
              if ratio <= 1.05 then incr within_opt;
              if ratio <= 1.4 then incr within14;
              if ratio <= 2.0 then incr within2;
              Printf.printf
                "Q%-2d%s W(%d) B(%d) H(%d): spectrum %.4fs..%.4fs  pick %.4fs (%.2fx of best)\n%!"
                i
                (if nl > 1 then Printf.sprintf "_%d" nl else "")
                (fam Gf.Spectrum.Wco) (fam Gf.Spectrum.Bj) (fam Gf.Spectrum.Hybrid) tmin tmax
                tpick ratio)
        queries)
    (spectrum_datasets ());
  Printf.printf
    "\noptimizer pick: optimal (<=1.05x) in %d/%d spectra, within 1.4x in %d, within 2x in %d\n"
    !within_opt !total !within14 !within2;
  Printf.printf "max optimization time across all spectra: %.0fms (paper: 331ms, 1.4s for Q7_5)\n"
    (1000.0 *. !max_plan_time)

(* ------------------------------------------------------------------ *)
(* Figure 8: fixed vs adaptive plan spectra.                           *)
(* ------------------------------------------------------------------ *)

let figure8 () =
  header "Figure 8: adaptive QVO selection (fixed vs adaptive, per plan)";
  let datasets =
    [
      ("amazon", dataset_at (Gf.Generators.Amazon, spectrum_scale));
      ("epinions", dataset_at (Gf.Generators.Epinions, spectrum_scale));
      ("google", dataset_at (Gf.Generators.Google, spectrum_scale));
    ]
  in
  List.iter
    (fun (dlabel, g) ->
      let cat = catalog g in
      subheader dlabel;
      List.iter
        (fun i ->
          let q = Gf.Patterns.q i in
          let orders = Gf.Planner.all_wco_orders cat q |> List.map fst in
          let improvements = ref [] in
          List.iter
            (fun o ->
              let plan = Gf.Plan.wco q o in
              let tf, _ = time_warm (fun () -> Gf.Exec.run g plan) in
              let ta, _ = time_warm (fun () -> Gf.Adaptive.run cat g q plan) in
              improvements := (tf, ta) :: !improvements)
            orders;
          let fixed = List.map fst !improvements and adap = List.map snd !improvements in
          let spread l = List.fold_left Float.max 0.0 l /. Float.max (List.fold_left Float.min infinity l) 1e-6 in
          let best_gain =
            List.fold_left (fun acc (f, a) -> Float.max acc (f /. Float.max a 1e-6)) 0.0 !improvements
          in
          Printf.printf
            "Q%-2d (%d plans): fixed %.4fs..%.4fs (spread %.1fx) | adaptive %.4fs..%.4fs (spread %.1fx) | best gain %.2fx\n"
            i (List.length orders)
            (List.fold_left Float.min infinity fixed) (List.fold_left Float.max 0.0 fixed) (spread fixed)
            (List.fold_left Float.min infinity adap) (List.fold_left Float.max 0.0 adap) (spread adap)
            best_gain)
        [ 2; 3; 4; 5; 6 ])
    datasets;
  (* Q10: adapt the E/I chain computing the diamond inside hybrid plans
     (each plan joins the diamond side with the triangle side on a4; the
     diamond side is a 2-deep E/I chain, which is what adapts). *)
  subheader "Q10 hybrid plans (amazon): diamond side adapted";
  let g = dataset_at (Gf.Generators.Amazon, spectrum_scale) in
  let cat = catalog g in
  let q = Gf.Patterns.q 10 in
  let triangle_side = Gf.Plan.wco q [| 3; 4; 5 |] in
  List.iter
    (fun diamond_order ->
      let plan = Gf.Plan.hash_join q triangle_side (Gf.Plan.wco q diamond_order) in
      assert (Gf.Adaptive.adaptable plan);
      let tf, _ = time_warm (fun () -> Gf.Exec.run g plan) in
      let ta, _ = time_warm (fun () -> Gf.Adaptive.run cat g q plan) in
      Printf.printf "hybrid (diamond %s): fixed %.4fs adaptive %.4fs (%.2fx)\n"
        (order_name diamond_order) tf ta
        (tf /. Float.max ta 1e-6))
    [ [| 0; 1; 2; 3 |]; [| 1; 2; 0; 3 |]; [| 1; 2; 3; 0 |]; [| 2; 3; 1; 0 |]; [| 0; 2; 1; 3 |] ]

(* ------------------------------------------------------------------ *)
(* Figure 9: EmptyHeaded spectra vs Graphflow spectra.                 *)
(* ------------------------------------------------------------------ *)

let figure9 () =
  header "Figure 9: EH plan spectra (all bag-ordering rewrites of the min-width GHD)";
  let combos =
    [ (3, Gf.Generators.Amazon); (7, Gf.Generators.Epinions); (8, Gf.Generators.Amazon) ]
  in
  List.iter
    (fun (qi, dname) ->
      let g = dataset_at (dname, spectrum_scale) in
      let q = Gf.Patterns.q qi in
      let d = Gf.Ghd.min_width_decomposition q in
      Format.printf "Q%d on %s: GHD %a@." qi
        (Gf.Generators.dataset_name_to_string dname)
        Gf.Ghd.pp_decomposition d;
      (* Cartesian product of bag orderings, capped. *)
      let per_bag = Gf.Ghd.bag_orders q d |> Array.map (fun l -> List.filteri (fun i _ -> i < 6) l) in
      let rec combos_of i acc =
        if i = Array.length per_bag then [ List.rev acc ]
        else List.concat_map (fun o -> combos_of (i + 1) (o :: acc)) per_bag.(i)
      in
      let all = combos_of 0 [] in
      let times =
        List.map
          (fun orders ->
            let p = Gf.Ghd.plan_with_orders q d (Array.of_list orders) in
            fst (time_warm (fun () -> Gf.Exec.run g p)))
          (List.filteri (fun i _ -> i < 24) all)
      in
      let gf = Gf.Spectrum.run ~per_subset_cap:3 ~family_cap:8 g q in
      let gf_times = List.map (fun e -> e.Gf.Spectrum.seconds) gf.Gf.Spectrum.entries in
      Printf.printf "EH(%d plans): %.4fs .. %.4fs | GF(%d plans): %.4fs .. %.4fs\n"
        (List.length times)
        (List.fold_left Float.min infinity times)
        (List.fold_left Float.max 0.0 times)
        (List.length gf_times)
        (List.fold_left Float.min infinity gf_times)
        (List.fold_left Float.max 0.0 gf_times))
    combos

(* ------------------------------------------------------------------ *)
(* Table 9: Graphflow vs EH-g vs EH-b.                                 *)
(* ------------------------------------------------------------------ *)

let table9 () =
  header "Table 9: Graphflow (GF) vs EmptyHeaded good/bad orderings (EH-g / EH-b)";
  let queries = [ 1; 3; 5; 7; 8; 9; 12; 13 ] in
  let datasets =
    [
      ("amazon", Gf.Generators.Amazon);
      ("google", Gf.Generators.Google);
      ("epinions", Gf.Generators.Epinions);
    ]
  in
  List.iter
    (fun (dlabel, dname) ->
      subheader dlabel;
      Printf.printf "%-8s %12s %12s %12s %12s\n" "query" "EH-b" "EH-g" "GF" "EH-b/GF";
      List.iter
        (fun qi ->
          List.iter
            (fun nl ->
              let g = if nl = 1 then dataset_at (dname, spectrum_scale) else labeled (dname, spectrum_scale, nl) in
              let cat = catalog g in
              let q = if nl = 1 then Gf.Patterns.q qi else labeled_query qi nl in
              let name = Printf.sprintf "Q%d%s" qi (if nl > 1 then Printf.sprintf "_%d" nl else "") in
              try
                let d = Gf.Ghd.min_width_decomposition q in
                let gf_plan, _ = Gf.Planner.plan cat q in
                let t_gf, _ = time_once (fun () -> Gf.Exec.run g gf_plan) in
                let t_ehb, _ =
                  time_once (fun () -> Gf.Exec.run g (Gf.Ghd.to_plan cat q d Gf.Ghd.Worst_estimated))
                in
                let t_ehg, _ =
                  time_once (fun () -> Gf.Exec.run g (Gf.Ghd.to_plan cat q d Gf.Ghd.Best_estimated))
                in
                Printf.printf "%-8s %11.3fs %11.3fs %11.3fs %11.1fx\n" name t_ehb t_ehg t_gf
                  (t_ehb /. Float.max t_gf 1e-6)
              with e -> Printf.printf "%-8s skipped (%s)\n" name (Printexc.to_string e))
            [ 1; 2 ])
        queries)
    datasets

(* ------------------------------------------------------------------ *)
(* Figure 10: the seamless hybrid plan for Q9.                         *)
(* ------------------------------------------------------------------ *)

let figure10 () =
  header "Figure 10: the optimizer's Q9 plan (intersections after a binary join)";
  let g = dataset_at (Gf.Generators.Amazon, spectrum_scale) in
  let cat = catalog g in
  let q = Gf.Patterns.q 9 in
  let plan, cost = Gf.Planner.plan cat q in
  Format.printf "%a@.estimated cost %.0f@." Gf.Plan.pp plan cost;
  let has_join = ref false and extend_after_join = ref false in
  let rec walk above_join = function
    | Gf.Plan.Scan _ -> ()
    | Gf.Plan.Extend { child; _ } ->
        if above_join then extend_after_join := true;
        walk above_join child
    | Gf.Plan.Hash_join { build; probe; _ } ->
        has_join := true;
        walk false build;
        walk false probe
  in
  let rec walk_root = function
    | Gf.Plan.Extend { child; _ } ->
        (match child with
        | Gf.Plan.Hash_join _ -> extend_after_join := true
        | _ -> ());
        walk_root child
    | Gf.Plan.Hash_join { build; probe; _ } ->
        has_join := true;
        walk false build;
        walk false probe
    | Gf.Plan.Scan _ -> ()
  in
  walk_root plan;
  let t, c = time_once (fun () -> Gf.Exec.run g plan) in
  Printf.printf "matches %s in %.3fs; plan %s a join%s\n"
    (fmt_count c.Gf.Counters.output) t
    (if !has_join then "contains" else "does not contain")
    (if !extend_after_join then " with an E/I above it (not expressible as a GHD)" else "")

(* ------------------------------------------------------------------ *)
(* Figure 11: parallel scalability (hardware-gated: 1 physical core).  *)
(* ------------------------------------------------------------------ *)

let busy_stats (r : Gf.Parallel.report) =
  (* max/min per-domain busy time: 1.00 is a perfectly balanced load *)
  let busys =
    Array.to_list r.Gf.Parallel.per_domain
    |> List.map (fun (c : Gf.Counters.t) -> c.Gf.Counters.busy_s)
    |> List.filter (fun b -> b > 0.)
  in
  match busys with
  | [] -> 1.0
  | b :: rest ->
      let mx = List.fold_left max b rest and mn = List.fold_left min b rest in
      if mn <= 0. then Float.infinity else mx /. mn

let figure11 () =
  header "Figure 11: work-stealing parallel execution (NOTE: container has 1 physical core)";
  let runs =
    [
      ("Q1 twitter", dataset_at (Gf.Generators.Twitter, scale *. 0.5), Gf.Patterns.q 1);
      ("Q1 livejournal", dataset_at (Gf.Generators.Livejournal, scale *. 0.5), Gf.Patterns.q 1);
      ("Q2 livejournal", dataset_at (Gf.Generators.Livejournal, scale *. 0.5), Gf.Patterns.q 2);
      ("Q14 google", dataset_at (Gf.Generators.Google, scale *. 0.5), Gf.Patterns.q 14);
    ]
  in
  List.iter
    (fun (label, g, q) ->
      let cat = catalog g in
      let order, _ = Gf.Planner.best_wco_order cat q in
      let plan = Gf.Plan.wco q order in
      Printf.printf "%-16s" label;
      List.iter
        (fun d ->
          let t, r = time_once (fun () -> Gf.Parallel.run ~domains:d g plan) in
          let active =
            Array.fold_left (fun a o -> a + if o > 0 then 1 else 0) 0 r.Gf.Parallel.per_domain_output
          in
          let c = r.Gf.Parallel.counters in
          Printf.printf "  %dd: %.3fs (%d active, %d morsels, %d steals, imb %.2f)" d t
            active c.Gf.Counters.morsels c.Gf.Counters.steals (busy_stats r))
        [ 1; 2; 4 ];
      print_newline ())
    runs;
  (* A/B: static chunked scheduling vs morsel-driven work stealing on the
     most skewed dataset. The imbalance column (max/min per-domain busy
     time) is the figure's point: stealing flattens it. *)
  subheader "chunked baseline vs morsel-driven (Q1 twitter, 4 domains)";
  let g = dataset_at (Gf.Generators.Twitter, scale *. 0.5) in
  let q = Gf.Patterns.q 1 in
  let order, _ = Gf.Planner.best_wco_order (catalog g) q in
  let plan = Gf.Plan.wco q order in
  let t_old, r_old = time_once (fun () -> Gf.Parallel.run_chunked ~domains:4 ~chunk:64 g plan) in
  let t_new, r_new = time_once (fun () -> Gf.Parallel.run ~domains:4 ~chunk:64 g plan) in
  Printf.printf "chunked: %.3fs  imbalance %.2f  (hash-join builds re-run per domain)\n" t_old
    (busy_stats r_old);
  Printf.printf "morsel:  %.3fs  imbalance %.2f  (%d morsels, %d steals, builds shared)\n" t_new
    (busy_stats r_new) r_new.Gf.Parallel.counters.Gf.Counters.morsels
    r_new.Gf.Parallel.counters.Gf.Counters.steals;
  print_endline
    "(on one physical core the speedup cannot manifest; morsel counts, steal counts and";
  print_endline " the busy-time imbalance show the scheduler functioning — see EXPERIMENTS.md)"

(* ------------------------------------------------------------------ *)
(* Governor: budget-check overhead (A/B) and deadline promptness.      *)
(* ------------------------------------------------------------------ *)

let governor () =
  header "Governor: check overhead and deadline promptness";
  (* A/B: unlimited governor (caps unset, checks skip the clock) vs a
     generous budget that never trips but exercises the full check path
     (clock read, cap compares, atomic produced-count flushes). No output
     cap: per-output atomic claims are the cost of the cap feature itself
     (identical to the old limit implementation), not of governor checks.
     Same plan, warm caches, best of 9 runs. *)
  let g = dataset_at (Gf.Generators.Twitter, scale *. 0.5) in
  let q = Gf.Patterns.q 1 in
  let order, _ = Gf.Planner.best_wco_order (catalog g) q in
  let plan = Gf.Plan.wco q order in
  let best f =
    ignore (f ());
    let ts = List.init 9 (fun _ -> fst (time_once f)) in
    List.fold_left min infinity ts
  in
  let generous =
    Gf.Governor.budget ~deadline_s:3600. ~max_intermediate:(1 lsl 50)
      ~max_bytes:(1 lsl 50) ()
  in
  let t_plain = best (fun () -> Gf.Exec.run g plan) in
  let t_gov = best (fun () -> Gf.Exec.run_gov ~budget:generous g plan) in
  let c_gov, _ = Gf.Exec.run_gov ~budget:generous g plan in
  Printf.printf
    "Q1 twitter sequential: unlimited %.4fs, full budget %.4fs (overhead %+.1f%%, %d checks)\n"
    t_plain t_gov
    ((t_gov /. t_plain -. 1.) *. 100.)
    c_gov.Gf.Counters.gov_checks;
  let tp_plain = best (fun () -> Gf.Parallel.run ~domains:4 g plan) in
  let tp_gov = best (fun () -> Gf.Parallel.run ~domains:4 ~budget:generous g plan) in
  Printf.printf "Q1 twitter 4 domains:  unlimited %.4fs, full budget %.4fs (overhead %+.1f%%)\n"
    tp_plain tp_gov
    ((tp_gov /. tp_plain -. 1.) *. 100.);
  (* Deadline promptness: a clique-heavy graph (high clustering + planted
     8-cliques) where the acyclic 4-clique Q5 runs far past any deadline;
     every domain must observe the trip and return well under 3x the
     deadline, counters intact. *)
  subheader "50 ms deadline, clique-heavy graph (Q5 = acyclic 4-clique)";
  let rng = Gf.Rng.create 42 in
  let n = max 2_000 (int_of_float (80_000. *. scale)) in
  let gc =
    Gf.Generators.plant_cliques rng
      (Gf.Generators.holme_kim rng ~n ~m_per:8 ~p_triad:0.9 ~recip:0.3)
      ~count:(n / 50) ~size:8
  in
  let q5 = Gf.Patterns.q 5 in
  let plan5 = Gf.Plan.wco q5 (Array.init (Gf.Query.num_vertices q5) Fun.id) in
  let deadline = Gf.Governor.budget ~deadline_s:0.05 () in
  List.iter
    (fun d ->
      let t, r =
        time_once (fun () -> Gf.Parallel.run ~domains:d ~budget:deadline gc plan5)
      in
      Printf.printf "%d domain(s): returned in %3.0f ms, outcome %s, %s tuples produced\n" d
        (t *. 1000.)
        (Gf.Governor.outcome_to_string r.Gf.Parallel.outcome)
        (fmt_count r.Gf.Parallel.counters.Gf.Counters.produced))
    [ 1; 4 ];
  (* Deterministic fault injection: the same seed always fails at the same
     produced-tuple count. *)
  subheader "seeded fault injection";
  let frng = Gf.Rng.create 7 in
  let at = 1 + Gf.Rng.int frng 100_000 in
  let fc, fo =
    Gf.Exec.run_gov ~fault:{ Gf.Governor.at_tuple = at; operator = "extend" } g plan
  in
  Printf.printf "fault scheduled at tuple %d -> outcome %s, %s tuples produced\n" at
    (Gf.Governor.outcome_to_string fo)
    (fmt_count fc.Gf.Counters.produced)

(* ------------------------------------------------------------------ *)
(* Resilience: service-layer overhead over a direct governed run.      *)
(* ------------------------------------------------------------------ *)

let resilience () =
  header "Resilience: service submit vs a direct governed run (Q1, twitter)";
  (* Per-request cost of the full service path — admission queue, breaker
     verdict, ladder bookkeeping, worker handoff and the reply condvar —
     over the same query run directly through [Db.run_gov]. Warm caches,
     best of 9. The absolute gap is the price of one queued round-trip;
     it should stay in the noise for any non-trivial query. *)
  let g = dataset_at (Gf.Generators.Twitter, scale *. 0.5) in
  let db = Gf.Db.create g in
  let q = Gf.Patterns.q 1 in
  let best f =
    ignore (f ());
    let ts = List.init 9 (fun _ -> fst (time_once f)) in
    List.fold_left min infinity ts
  in
  let t_direct = best (fun () -> Gf.Db.run_gov db q) in
  let svc =
    Gf_server.Service.create
      ~config:{ Gf_server.Service.default_config with Gf_server.Service.workers = 2 }
      db
  in
  let req = Gf_server.Service.request q in
  let t_service = best (fun () -> Gf_server.Service.submit svc req) in
  Gf_server.Service.drain svc;
  Printf.printf
    "Q1 twitter: direct %.4fs, via service %.4fs (overhead %+.1f%%, %+.0f us/request)\n"
    t_direct t_service
    ((t_service /. t_direct -. 1.) *. 100.)
    ((t_service -. t_direct) *. 1e6)

(* ------------------------------------------------------------------ *)
(* Observability: per-operator profiling overhead + EXPLAIN ANALYZE.   *)
(* ------------------------------------------------------------------ *)

let observability () =
  header "Observability: per-operator profiling overhead (Q1, twitter)";
  (* A/B: profiling off (no [~prof] — compile-time branch, the pipeline is
     byte-identical to a pre-profiler build) vs on (boundary switches: two
     clock reads per tuple per wrapped operator). Same plan, warm caches,
     best of 9. The "off" number is the one EXPERIMENTS.md tracks against
     the pre-profiler baseline. *)
  let g = dataset_at (Gf.Generators.Twitter, scale *. 0.5) in
  let q = Gf.Patterns.q 1 in
  let cat = catalog g in
  let order, _ = Gf.Planner.best_wco_order cat q in
  let plan = Gf.Plan.wco q order in
  let best f =
    ignore (f ());
    let ts = List.init 9 (fun _ -> fst (time_once f)) in
    List.fold_left min infinity ts
  in
  let t_off = best (fun () -> Gf.Exec.run g plan) in
  let t_on =
    best (fun () -> Gf.Exec.run ~prof:(Gf.Profile.create plan) g plan)
  in
  Printf.printf
    "Q1 twitter sequential: profiling off %.4fs, on %.4fs (enabled cost %+.1f%%)\n" t_off
    t_on
    ((t_on /. t_off -. 1.) *. 100.);
  let tp_off = best (fun () -> Gf.Parallel.run ~domains:4 g plan) in
  let tp_on =
    best (fun () -> Gf.Parallel.run ~domains:4 ~prof:(Gf.Profile.create plan) g plan)
  in
  Printf.printf
    "Q1 twitter 4 domains:  profiling off %.4fs, on %.4fs (enabled cost %+.1f%%)\n" tp_off
    tp_on
    ((tp_on /. tp_off -. 1.) *. 100.);
  (* The join against the cost model the profile pays for. *)
  subheader "EXPLAIN ANALYZE (sequential run)";
  let prof = Gf.Profile.create plan in
  let (_ : Gf.Counters.t) = Gf.Exec.run ~prof g plan in
  print_string (Gf.Explain.to_string (Gf.Explain.rows cat q plan prof))

let tracing () =
  header "Tracing: span-recording overhead and export (Q1, twitter)";
  (* A/B: untraced vs traced [run_gov]. The untraced path is one [option]
     branch per phase boundary (never per tuple), so "off" must sit within
     noise of the pre-tracing build. Traced runs implicitly profile (the
     per-operator summary track needs self-times), so the honest comparison
     for the tracing increment alone is traced vs profiled-untraced. Best
     of 9, warm caches. *)
  let g = dataset_at (Gf.Generators.Twitter, scale *. 0.5) in
  let q = Gf.Patterns.q 1 in
  let cat = catalog g in
  let order, _ = Gf.Planner.best_wco_order cat q in
  let plan = Gf.Plan.wco q order in
  let best f =
    ignore (f ());
    let ts = List.init 9 (fun _ -> fst (time_once f)) in
    List.fold_left min infinity ts
  in
  let t_off = best (fun () -> Gf.Exec.run_gov g plan) in
  let t_prof = best (fun () -> Gf.Exec.run_gov ~prof:(Gf.Profile.create plan) g plan) in
  let t_on = best (fun () -> Gf.Exec.run_gov ~trace:(Gf.Trace.create ()) g plan) in
  Printf.printf
    "Q1 twitter sequential: untraced %.4fs, profiled %.4fs, traced %.4fs (traced vs \
     untraced %+.1f%%, vs profiled %+.1f%%)\n"
    t_off t_prof t_on
    ((t_on /. t_off -. 1.) *. 100.)
    ((t_on /. t_prof -. 1.) *. 100.);
  let tp_off = best (fun () -> Gf.Parallel.run ~domains:4 g plan) in
  let tp_on =
    best (fun () -> Gf.Parallel.run ~domains:4 ~trace:(Gf.Trace.create ()) g plan)
  in
  Printf.printf "Q1 twitter 4 domains:  untraced %.4fs, traced %.4fs (%+.1f%%)\n" tp_off
    tp_on
    ((tp_on /. tp_off -. 1.) *. 100.);
  (* What a traced parallel run records and exports. *)
  let tr = Gf.Trace.create () in
  let (_ : Gf.Parallel.report) = Gf.Parallel.run ~domains:4 ~trace:tr g plan in
  let json = Gf.Trace.to_chrome_json tr in
  Printf.printf
    "traced 4-domain run: %d spans (%d dropped), Chrome JSON %d bytes, %d B/E events\n"
    (List.length (Gf.Trace.spans tr))
    (Gf.Trace.dropped tr) (String.length json)
    (List.length (Gf.Trace.chrome_events tr))

let wire_obs () =
  header "Wire observability: span export/graft roundtrip and exposition render";
  (* The cross-process trace path a distributed query pays: the worker
     serializes its span tree ([export_spans]), the coordinator grafts it
     under a pid-tagged track ([graft]) and renders one Chrome trace.
     Measured on a real traced run so span counts and name/arg shapes are
     representative, best of 9, warm caches. *)
  let g = dataset_at (Gf.Generators.Twitter, scale *. 0.5) in
  let q = Gf.Patterns.q 1 in
  let cat = catalog g in
  let order, _ = Gf.Planner.best_wco_order cat q in
  let plan = Gf.Plan.wco q order in
  let tr = Gf.Trace.create () in
  let (_ : Gf.Parallel.report) = Gf.Parallel.run ~domains:4 ~trace:tr g plan in
  let best f =
    ignore (f ());
    let ts = List.init 9 (fun _ -> fst (time_once f)) in
    List.fold_left min infinity ts
  in
  let payload = Gf.Trace.export_spans tr in
  let t_export = best (fun () -> Gf.Trace.export_spans tr) in
  Printf.printf "export_spans: %d spans -> %d bytes in %.6fs\n"
    (List.length (Gf.Trace.spans tr))
    (String.length payload) t_export;
  let graft_once () =
    let dst = Gf.Trace.create () in
    Gf.Trace.graft dst ~pid:4242 ~pname:"w0 (bench)" ~skew_us:1500 payload;
    dst
  in
  let t_graft = best (fun () -> graft_once ()) in
  let stitched = graft_once () in
  let t_render = best (fun () -> Gf.Trace.to_chrome_json stitched) in
  let json = Gf.Trace.to_chrome_json stitched in
  Printf.printf
    "graft: %.6fs; stitched Chrome JSON: %d events, %d bytes in %.6fs\n"
    t_graft
    (List.length (Gf.Trace.chrome_events stitched))
    (String.length json) t_render;
  (* Exposition render cost: what one Prometheus scrape of /metrics costs
     the serving process (registry walk + text formatting, no I/O). *)
  let db = Gf.Db.create g in
  let (_ : Gf.Counters.t * Gf.Governor.outcome) = Gf.Db.run_gov db q in
  let expo = Gf.Db.metrics_exposition () in
  let t_expo = best (fun () -> Gf.Db.metrics_exposition ()) in
  let lines = List.length (String.split_on_char '\n' expo) in
  Printf.printf "metrics_exposition: %d lines, %d bytes in %.6fs per scrape\n" lines
    (String.length expo) t_expo

(* ------------------------------------------------------------------ *)
(* Tables 10 & 11: catalogue accuracy (q-error) vs z and h.            *)
(* ------------------------------------------------------------------ *)

let qerror_queries g nl =
  (* Random connected 5-vertex patterns; labels randomized when nl > 1. *)
  let rng = Gf.Rng.create 77 in
  List.init 40 (fun i ->
      let dense = i mod 2 = 0 in
      let q0 = Gf.Patterns.random_query rng ~num_vertices:5 ~dense ~num_vlabels:1 in
      if nl = 1 then q0 else Gf.Patterns.randomize_edge_labels rng q0 ~num_elabels:nl)
  |> List.filter_map (fun q ->
         (* ground truth through the executor *)
         match Gf.Planner.plan (catalog g) q with
         | exception _ -> None
         | plan, _ ->
             let truth = float_of_int (Gf.Exec.count g plan) in
             Some (q, truth))

let qerror_distribution errors =
  let buckets = [ 2.0; 3.0; 5.0; 10.0; 20.0 ] in
  let n_at t = List.length (List.filter (fun e -> e <= t) errors) in
  String.concat " "
    (List.map (fun t -> Printf.sprintf "<=%.0f:%d" t (n_at t)) buckets)
  ^ Printf.sprintf " >20:%d" (List.length errors - n_at 20.0)

let table10 () =
  header "Table 10: q-error and catalogue construction time vs z (h=3)";
  List.iter
    (fun (dlabel, g, nl) ->
      subheader dlabel;
      let queries = qerror_queries g nl in
      Printf.printf "(%d 5-vertex queries)\n" (List.length queries);
      List.iter
        (fun z ->
          let cat = Gf.Catalog.create ~h:3 ~z g in
          let build_t, n = time_once (fun () -> Gf.Catalog.build_exhaustive cat) in
          let errors =
            List.map
              (fun (q, truth) ->
                Gf.Catalog.q_error ~estimate:(Gf.Catalog.estimate_cardinality cat q) ~truth)
              queries
          in
          Printf.printf "z=%-5d build %6.2fs (%d entries)  %s\n" z build_t n
            (qerror_distribution errors))
        [ 100; 500; 1000 ])
    [
      ("amazon (unlabeled)", dataset_at (Gf.Generators.Amazon, spectrum_scale), 1);
      ("google (3 labels)", labeled (Gf.Generators.Google, spectrum_scale, 3), 3);
    ]

let table11 () =
  header "Table 11: q-error vs h (z=1000), with the independence-estimator baseline";
  List.iter
    (fun (dlabel, g, nl, hs) ->
      subheader dlabel;
      let queries = qerror_queries g nl in
      List.iter
        (fun h ->
          let cat = Gf.Catalog.create ~h ~z:1000 g in
          let _, n = time_once (fun () -> Gf.Catalog.build_exhaustive cat) in
          let errors =
            List.map
              (fun (q, truth) ->
                Gf.Catalog.q_error ~estimate:(Gf.Catalog.estimate_cardinality cat q) ~truth)
              queries
          in
          Printf.printf "h=%d (%6d entries)  %s\n" h n (qerror_distribution errors))
        hs;
      let pg =
        List.map
          (fun (q, truth) -> Gf.Catalog.q_error ~estimate:(Gf.Independence.estimate g q) ~truth)
          queries
      in
      Printf.printf "independence (PG)    %s\n" (qerror_distribution pg))
    [
      ("amazon (unlabeled)", dataset_at (Gf.Generators.Amazon, spectrum_scale), 1, [ 2; 3; 4 ]);
      ("google (3 labels)", labeled (Gf.Generators.Google, spectrum_scale, 3), 3, [ 2; 3 ]);
    ]

(* ------------------------------------------------------------------ *)
(* Table 12: Graphflow vs CFL on the human-like dataset.               *)
(* ------------------------------------------------------------------ *)

let table12 () =
  header "Table 12: Graphflow (GF) vs CFL-lite, human-like graph, output limit 100k";
  let g = dataset_at (Gf.Generators.Human, Float.min 1.0 (scale *. 4.0)) in
  let cat = catalog g in
  let limit = 100_000 in
  List.iter
    (fun dense ->
      List.iter
        (fun nv ->
          let rng = Gf.Rng.create (500 + nv + if dense then 1 else 0) in
          let queries =
            List.init 25 (fun _ -> Gf.Query_gen.from_data g rng ~num_vertices:nv ~dense)
          in
          let gf_total = ref 0.0 and cfl_total = ref 0.0 and ok = ref 0 in
          let matches = ref 0 in
          List.iter
            (fun q ->
              match Gf.Planner.plan cat q with
              | exception _ -> ()
              | plan, _ ->
                  let t_gf, c = time_once (fun () -> Gf.Exec.run ~distinct:true ~limit g plan) in
                  let t_cfl, _ = time_once (fun () -> Gf.Cfl_baseline.run ~limit g q) in
                  matches := !matches + c.Gf.Counters.output;
                  gf_total := !gf_total +. t_gf;
                  cfl_total := !cfl_total +. t_cfl;
                  incr ok)
            queries;
          if !ok > 0 then
            Printf.printf
              "Q%d%s (%d queries, %s matches): GF %.4fs  CFL %.4fs (avg/query, CFL/GF %.1fx)\n"
              nv
              (if dense then "d" else "s")
              !ok (fmt_count !matches)
              (!gf_total /. float_of_int !ok)
              (!cfl_total /. float_of_int !ok)
              (!cfl_total /. Float.max !gf_total 1e-6))
        [ 10; 15; 20 ])
    [ false; true ]

(* ------------------------------------------------------------------ *)
(* Table 13: Graphflow vs Neo4j-style binary joins.                    *)
(* ------------------------------------------------------------------ *)

let table13 () =
  header "Table 13: Graphflow (GF) vs binary-join-only baseline (Neo4j stand-in)";
  List.iter
    (fun (dlabel, dname) ->
      let g = dataset dname in
      let cat = catalog g in
      subheader dlabel;
      List.iter
        (fun qi ->
          let q = Gf.Patterns.q qi in
          let plan, _ = Gf.Planner.plan cat q in
          let t_gf, _ = time_once (fun () -> Gf.Exec.run g plan) in
          let t_bj, s = time_once (fun () -> Gf.Bj_baseline.run g q) in
          Printf.printf "Q%-3d GF %8.3fs   BJ %8.3fs (%.0fx, %s intermediate)\n" qi t_gf t_bj
            (t_bj /. Float.max t_gf 1e-6)
            (fmt_count s.Gf.Bj_baseline.intermediate))
        [ 1; 2; 4 ])
    [ ("amazon", Gf.Generators.Amazon); ("epinions", Gf.Generators.Epinions) ]

(* ------------------------------------------------------------------ *)
(* Ablations.                                                          *)
(* ------------------------------------------------------------------ *)

let ablation_cache_consciousness () =
  header "Ablation: cache-conscious vs cache-oblivious optimizer (Section 5.2)";
  let g = dataset Gf.Generators.Livejournal in
  let cat = catalog g in
  List.iter
    (fun (label, q) ->
      let o_con, _ = Gf.Planner.best_wco_order ~cache_conscious:true cat q in
      let o_obl, _ = Gf.Planner.best_wco_order ~cache_conscious:false cat q in
      let t_con, c_con = time_warm (fun () -> Gf.Exec.run g (Gf.Plan.wco q o_con)) in
      let t_obl, _ = time_warm (fun () -> Gf.Exec.run g (Gf.Plan.wco q o_obl)) in
      Printf.printf "%-22s conscious picks %s (%.3fs, %s hits); oblivious picks %s (%.3fs)\n"
        label (order_name o_con) t_con
        (fmt_count c_con.Gf.Counters.cache_hits)
        (order_name o_obl) t_obl)
    [
      ("diamond-X", Gf.Patterns.diamond_x);
      ("symmetric diamond-X", Gf.Patterns.symmetric_diamond_x);
    ]

let ablation_projection_constraint () =
  header "Ablation: projection constraint, plans P1 vs P2 (Figure 3)";
  let g = dataset Gf.Generators.Amazon in
  let q = Gf.Patterns.diamond_x in
  (* P1 (in our plan space): join of the two induced triangles on {a2,a3}. *)
  let p1 = Gf.Plan.hash_join q (Gf.Plan.wco q [| 1; 2; 0 |]) (Gf.Plan.wco q [| 1; 2; 3 |]) in
  (* P2 (outside it): the right subtree drops the a2->a3 edge, computing the
     open path a2->a4<-a3 instead of the induced triangle. *)
  let q_no23 =
    Gf.Query.create ~num_vertices:4
      ~edges:
        (Array.of_list
           (Array.to_list q.Gf.Query.edges
           |> List.filter (fun (e : Gf.Query.edge) -> not (e.src = 1 && e.dst = 2))))
      ()
  in
  let right_open = Gf.Plan.wco q_no23 [| 1; 3; 2 |] in
  let p2 = Gf.Plan.hash_join q (Gf.Plan.wco q [| 1; 2; 0 |]) right_open in
  let t1, c1 = time_warm (fun () -> Gf.Exec.run g p1) in
  let t2, c2 = time_warm (fun () -> Gf.Exec.run g p2) in
  Printf.printf "P1 (projection-constrained): %.3fs, %s matches\n" t1 (fmt_count c1.Gf.Counters.output);
  Printf.printf "P2 (edge dropped from right subtree): %.3fs, %s matches (%.1fx slower)\n" t2
    (fmt_count c2.Gf.Counters.output)
    (t2 /. Float.max t1 1e-6)

let ablation_hashjoin_weights () =
  header "Ablation: empirical HASH-JOIN weight calibration (Section 4.2)";
  let g = dataset_at (Gf.Generators.Amazon, spectrum_scale) in
  (* E/I profile points. *)
  let ei =
    List.map
      (fun o ->
        let plan = Gf.Plan.wco Gf.Patterns.diamond_x o in
        let t, c = time_warm (fun () -> Gf.Exec.run ~cache:false g plan) in
        (float_of_int c.Gf.Counters.icost, t))
      (Gf.Query.connected_orders Gf.Patterns.diamond_x |> List.filteri (fun i _ -> i < 6))
  in
  (* HASH-JOIN profile points from BJ-style joins of sub-plans. *)
  let hj =
    List.filter_map
      (fun qi ->
        let q = Gf.Patterns.q qi in
        let plans, _ = Gf.Spectrum.plans ~per_subset_cap:3 ~family_cap:4 q in
        match List.find_opt (fun (f, _) -> f = Gf.Spectrum.Bj) plans with
        | None -> None
        | Some (_, p) ->
            let t, c = time_warm (fun () -> Gf.Exec.run g p) in
            Some
              ( float_of_int c.Gf.Counters.hj_build_tuples,
                float_of_int c.Gf.Counters.hj_probe_tuples,
                t ))
      [ 2; 11; 12; 13 ]
  in
  let w = Gf.Cost.calibrate ~ei ~hj in
  Printf.printf "profiled %d E/I points, %d HASH-JOIN points -> w1 = %.2f, w2 = %.2f\n"
    (List.length ei) (List.length hj) w.Gf.Cost.w1 w.Gf.Cost.w2

let ablation_estimators () =
  header "Ablation: cardinality estimators (catalogue vs wander-join sampling vs independence)";
  List.iter
    (fun (dlabel, g, nl) ->
      subheader dlabel;
      let queries = qerror_queries g nl in
      let cat = Gf.Catalog.create ~h:3 ~z:1000 g in
      let errs name f =
        let t0 = Unix.gettimeofday () in
        let es = List.map (fun (q, truth) -> Gf.Catalog.q_error ~estimate:(f q) ~truth) queries in
        Printf.printf "%-22s %s  (%.2fs)\n" name (qerror_distribution es)
          (Unix.gettimeofday () -. t0)
      in
      errs "catalogue (h=3)" (fun q -> Gf.Catalog.estimate_cardinality cat q);
      let rng = Gf.Rng.create 99 in
      errs "wander-join (2k walks)" (fun q -> Gf.Wander.estimate g q ~walks:2000 rng);
      errs "independence (PG)" (fun q -> Gf.Independence.estimate g q))
    [
      ("amazon (unlabeled)", dataset_at (Gf.Generators.Amazon, spectrum_scale), 1);
      ("google (3 labels)", labeled (Gf.Generators.Google, spectrum_scale, 3), 3);
    ]

let ablation_intersection_kernel () =
  header "Ablation: pairwise-cascade vs Leapfrog Triejoin multiway intersection";
  let g = dataset Gf.Generators.Livejournal in
  List.iter
    (fun (label, q, order) ->
      let plan = Gf.Plan.wco q order in
      let tp, cp = time_warm (fun () -> Gf.Exec.run ~leapfrog:false g plan) in
      let tl, cl = time_warm (fun () -> Gf.Exec.run ~leapfrog:true g plan) in
      assert (cp.Gf.Counters.output = cl.Gf.Counters.output);
      Printf.printf "%-22s pairwise %.3fs  leapfrog %.3fs (%.2fx) on %s matches\n" label tp tl
        (tp /. Float.max tl 1e-6)
        (fmt_count cp.Gf.Counters.output))
    [
      ("triangle", Gf.Patterns.asymmetric_triangle, [| 0; 1; 2 |]);
      ("diamond-X", Gf.Patterns.diamond_x, [| 1; 2; 0; 3 |]);
      ("4-clique", Gf.Patterns.clique 4 ~cyclic:false, [| 0; 1; 2; 3 |]);
      ("5-clique", Gf.Patterns.clique 5 ~cyclic:false, [| 0; 1; 2; 3; 4 |]);
    ];
  subheader
    (Printf.sprintf "two-list kernels, elements/s by length ratio (C dispatch: %s)"
       (Gf.Sorted.with_kernel_mode Gf.Sorted.Simd Gf.Sorted.kernel_name));
  (* Synthetic sorted lists with ~50%% overlap; the skewed buckets exercise
     the blocked-galloping path, the balanced ones the shuffle path. *)
  let rng = Gf.Rng.create 7 in
  let gen len =
    let out = Array.make len 0 in
    let v = ref 0 in
    for i = 0 to len - 1 do
      v := !v + 1 + Gf.Rng.int rng 2;
      out.(i) <- !v
    done;
    out
  in
  let time_kernel mode a la b lb =
    Gf.Sorted.with_kernel_mode mode (fun () ->
        let out = Gf.Int_vec.create () in
        (* pilot to size the measured loop to ~0.15s *)
        let pilot = 200 in
        let t0 = Unix.gettimeofday () in
        for _ = 1 to pilot do
          Gf.Int_vec.clear out;
          Gf.Sorted.intersect2 out a 0 la b 0 lb
        done;
        let per = (Unix.gettimeofday () -. t0) /. float_of_int pilot in
        let reps = max 200 (int_of_float (0.15 /. Float.max per 1e-9)) in
        let t0 = Unix.gettimeofday () in
        for _ = 1 to reps do
          Gf.Int_vec.clear out;
          Gf.Sorted.intersect2 out a 0 la b 0 lb
        done;
        let t = Unix.gettimeofday () -. t0 in
        float_of_int ((la + lb) * reps) /. t)
  in
  Printf.printf "%-12s %14s %14s %9s\n" "ratio" "scalar el/s" "simd el/s" "speedup";
  List.iter
    (fun (label, la, lb) ->
      let a_arr = gen la in
      (* keep value ranges aligned so the lists actually intersect *)
      let b_arr =
        if la = lb then gen lb
        else Array.init lb (fun i -> a_arr.(i * la / lb) + (i mod 2))
             |> Array.to_list |> List.sort_uniq compare |> Array.of_list
      in
      let lb = Array.length b_arr in
      let a = Gf.Buf.of_int_array a_arr and b = Gf.Buf.of_int_array b_arr in
      let s = time_kernel Gf.Sorted.Scalar a la b lb in
      let v = time_kernel Gf.Sorted.Simd a la b lb in
      Printf.printf "%-12s %14s %14s %8.2fx\n" label
        (fmt_count (int_of_float s))
        (fmt_count (int_of_float v))
        (v /. s))
    [
      ("1:1 (4K)", 4096, 4096);
      ("1:1 (64K)", 65536, 65536);
      ("1:8", 2048, 16384);
      ("1:64", 512, 32768);
      ("1:512", 64, 32768);
    ]

(* ------------------------------------------------------------------ *)
(* Storage: heap int-array CSR vs off-heap Bigarray CSR vs mmap.       *)
(* ------------------------------------------------------------------ *)

let storage () =
  header "Storage: heap int-array CSR vs off-heap Bigarray CSR vs mmap snapshot";
  let g = dataset Gf.Generators.Livejournal in
  let n = Gf.Graph.num_vertices g in
  let ne = Gf.Graph.num_elabels g and nv = Gf.Graph.num_vlabels g in
  let r = Gf.Graph.residency g in
  Printf.printf "graph: n=%s m=%s, %s off-heap (%d-byte ids), %s heap metadata\n"
    (fmt_count n)
    (fmt_count (Gf.Graph.num_edges g))
    (fmt_count r.Gf.Graph.offheap_bytes)
    r.Gf.Graph.nbr_width
    (fmt_count r.Gf.Graph.heap_bytes);
  (* A: heap copy of the CSR as ordinary int arrays (the pre-refactor
     representation): one array per (v, dir, el, nl) partition. *)
  let t_copy, heap =
    time_once (fun () ->
        Array.init (n * ne * nv) (fun i ->
            let v = i / (ne * nv) in
            let el = i mod (ne * nv) / nv and nl = i mod nv in
            let arr, lo, hi = Gf.Graph.neighbours g Gf.Graph.Fwd v ~elabel:el ~nlabel:nl in
            Gf.Buf.sub_array arr lo hi))
  in
  let heap_bytes =
    Array.fold_left (fun acc a -> acc + ((Array.length a + 1) * 8)) 0 heap
  in
  Printf.printf "heap int-array copy: %s bytes (%.2fx off-heap), built in %.3fs\n"
    (fmt_count heap_bytes)
    (float_of_int heap_bytes /. Float.max (float_of_int r.Gf.Graph.offheap_bytes) 1.0)
    t_copy;
  (* Full forward-adjacency sweep under each representation. *)
  let sweep_heap () =
    let acc = ref 0 in
    Array.iter (fun a -> Array.iter (fun x -> acc := !acc + x) a) heap;
    !acc
  in
  let sweep_graph g =
    let acc = ref 0 in
    for v = 0 to n - 1 do
      for el = 0 to ne - 1 do
        for nl = 0 to nv - 1 do
          let arr, lo, hi = Gf.Graph.neighbours g Gf.Graph.Fwd v ~elabel:el ~nlabel:nl in
          for i = lo to hi - 1 do
            acc := !acc + Gf.Buf.unsafe_get arr i
          done
        done
      done
    done;
    !acc
  in
  let t_heap, sum_heap = time_warm sweep_heap in
  let t_ba, sum_ba = time_warm (fun () -> sweep_graph g) in
  assert (sum_heap = sum_ba);
  Printf.printf "adjacency sweep: heap arrays %.3fs, bigarray CSR %.3fs (%.2fx)\n" t_heap t_ba
    (t_ba /. Float.max t_heap 1e-9);
  (* Snapshot: save, mmap load latency, and query parity built vs mapped. *)
  let path = Filename.temp_file "gfq_bench" ".snap" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let t_save, () = time_once (fun () -> Gf.Graph_io.save_snapshot g path) in
      let t_load, gm = time_once (fun () -> Gf.Graph_io.load_snapshot path) in
      let sz = (Unix.stat path).Unix.st_size in
      Printf.printf "snapshot: %s bytes, save %.3fs, mmap load %.6fs\n" (fmt_count sz)
        t_save t_load;
      let t_text, _ =
        time_once (fun () ->
            let tmp = Filename.temp_file "gfq_bench" ".graph" in
            Fun.protect
              ~finally:(fun () -> try Sys.remove tmp with Sys_error _ -> ())
              (fun () ->
                Gf.Graph_io.save g tmp;
                Gf.Graph_io.load tmp))
      in
      Printf.printf "text round-trip for comparison: %.3fs (%.0fx slower than mmap)\n" t_text
        (t_text /. Float.max t_load 1e-9);
      let t_sweep_m, sum_m = time_warm (fun () -> sweep_graph gm) in
      assert (sum_m = sum_ba);
      Printf.printf "adjacency sweep on mapped graph: %.3fs (%.2fx vs built)\n" t_sweep_m
        (t_sweep_m /. Float.max t_ba 1e-9);
      let plan = Gf.Plan.wco Gf.Patterns.asymmetric_triangle [| 0; 1; 2 |] in
      let t_q, c = time_warm (fun () -> Gf.Exec.run g plan) in
      let t_qm, cm = time_warm (fun () -> Gf.Exec.run gm plan) in
      assert (c.Gf.Counters.output = cm.Gf.Counters.output);
      Printf.printf "triangle count: built %.3fs, mapped %.3fs on %s matches\n" t_q t_qm
        (fmt_count c.Gf.Counters.output))

let ablation_factorized_count () =
  header "Ablation: factorized counting (Sections 3.2.3 / 10)";
  let g = dataset Gf.Generators.Livejournal in
  List.iter
    (fun (label, q, order) ->
      let plan = Gf.Plan.wco q order in
      let t_enum, c = time_warm (fun () -> Gf.Exec.run g plan) in
      let t_fast, n = time_warm (fun () -> Gf.Exec.count_fast g plan) in
      assert (n = c.Gf.Counters.output);
      Printf.printf "%-22s enumerate %.3fs  count-only %.3fs (%.2fx) for %s matches\n" label
        t_enum t_fast
        (t_enum /. Float.max t_fast 1e-6)
        (fmt_count n))
    [
      ("triangle", Gf.Patterns.asymmetric_triangle, [| 0; 1; 2 |]);
      ("diamond-X (friendly)", Gf.Patterns.diamond_x, [| 1; 2; 0; 3 |]);
      ("tailed triangle", Gf.Patterns.tailed_triangle, [| 0; 1; 2; 3 |]);
    ]

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per table/figure.          *)
(* ------------------------------------------------------------------ *)

let bechamel_suite () =
  header "Bechamel micro-benchmarks (one per table/figure, scaled-down kernels)";
  let open Bechamel in
  let g = dataset_at (Gf.Generators.Amazon, 0.05) in
  let cat = Gf.Catalog.create ~z:100 g in
  let run_plan plan () = ignore (Gf.Exec.run g plan) in
  let dx = Gf.Patterns.diamond_x in
  let tt = Gf.Patterns.tailed_triangle in
  let sdx = Gf.Patterns.symmetric_diamond_x in
  let tri = Gf.Patterns.asymmetric_triangle in
  let mk name f = Test.make ~name (Staged.stage f) in
  let tests =
    [
      mk "table3/diamondx-cache-on" (run_plan (Gf.Plan.wco dx [| 1; 2; 0; 3 |]));
      mk "table3/diamondx-cache-off" (fun () ->
          ignore (Gf.Exec.run ~cache:false g (Gf.Plan.wco dx [| 1; 2; 0; 3 |])));
      mk "table4/triangle-fwd-fwd" (run_plan (Gf.Plan.wco tri [| 0; 1; 2 |]));
      mk "table5/tailed-triangle" (run_plan (Gf.Plan.wco tt [| 0; 1; 2; 3 |]));
      mk "table6/symmetric-diamondx" (run_plan (Gf.Plan.wco sdx [| 1; 2; 0; 3 |]));
      mk "table7/catalogue-entry" (fun () ->
          ignore (Gf.Catalog.mu_estimate cat tri ~new_vertex:2));
      mk "figure7/optimize-diamondx" (fun () -> ignore (Gf.Planner.plan cat dx));
      mk "figure8/adaptive-diamondx" (fun () ->
          ignore (Gf.Adaptive.run cat g dx (Gf.Plan.wco dx [| 1; 2; 0; 3 |])));
      mk "figure9/ghd-decompose" (fun () -> ignore (Gf.Ghd.min_width_decomposition dx));
      mk "table9/eh-plan" (fun () ->
          let d = Gf.Ghd.min_width_decomposition dx in
          ignore (Gf.Exec.run g (Gf.Ghd.to_plan cat dx d Gf.Ghd.Lexicographic)));
      mk "figure10/q9-hybrid" (fun () -> ignore (Gf.Planner.plan cat (Gf.Patterns.q 9)));
      mk "figure11/parallel-2dom" (fun () ->
          ignore (Gf.Parallel.run ~domains:2 g (Gf.Plan.wco tri [| 0; 1; 2 |])));
      mk "table10/cardinality-estimate" (fun () ->
          ignore (Gf.Catalog.estimate_cardinality cat dx));
      mk "table11/independence-estimate" (fun () -> ignore (Gf.Independence.estimate g dx));
      mk "table12/cfl-triangle" (fun () -> ignore (Gf.Cfl_baseline.count ~limit:1000 g tri));
      mk "table13/bj-triangle" (fun () -> ignore (Gf.Bj_baseline.count g tri));
    ]
  in
  let benchmark test =
    let instance = Toolkit.Instance.monotonic_clock in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:(Some 10) () in
    let results = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"t" [ test ]) in
    let ols =
      Analyze.all
        (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
        instance results
    in
    Hashtbl.iter
      (fun name result ->
        match Analyze.OLS.estimates result with
        | Some [ est ] -> Printf.printf "%-34s %12.1f ns/run\n" name est
        | _ -> Printf.printf "%-34s (no estimate)\n" name)
      ols
  in
  List.iter benchmark tests

(* ------------------------------------------------------------------ *)
(* Driver.                                                             *)
(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* Durability: WAL fsync policies, merge and checkpoint cost, and the  *)
(* read-path parity claim (store-attached queries with an empty delta  *)
(* must run at plain-CSR speed).                                       *)
(* ------------------------------------------------------------------ *)

let durability () =
  header "Durability: WAL throughput, merge/checkpoint cost, read-path parity";
  let module Store = Gf_wal.Store in
  let g = dataset Gf.Generators.Amazon in
  let n = Gf.Graph.num_vertices g in
  let with_store_dir f =
    let dir = Filename.temp_file "gfq_bench_wal" "" in
    Sys.remove dir;
    Unix.mkdir dir 0o700;
    Fun.protect
      ~finally:(fun () ->
        Array.iter (fun b -> try Sys.remove (Filename.concat dir b) with Sys_error _ -> ())
          (Sys.readdir dir);
        try Unix.rmdir dir with Unix.Unix_error _ -> ())
      (fun () -> f dir)
  in
  let mutate st rng =
    let u = Gf.Rng.int rng n and v = Gf.Rng.int rng n in
    ignore (Store.add_edge st u v ~elabel:0)
  in
  let ops = int_of_float (2000.0 *. Float.max scale 0.1) in
  (* Policy A: fsync on every append — the strictest (and slowest) rule. *)
  let t_every =
    with_store_dir (fun dir ->
        let cfg = { Store.default_config with sync_every_append = true; merge_threshold = 0 } in
        let st = match Store.open_store ~config:cfg ~init:g dir with
          | Ok st -> st
          | Error e -> failwith (Store.open_error_to_string e)
        in
        let rng = Gf.Rng.create 5 in
        let t, () = time_once (fun () -> for _ = 1 to ops do mutate st rng done) in
        Store.close st;
        t)
  in
  (* Policy B: group commit — sync once per batch of 16, the service's
     ack batching under concurrent writers. *)
  let t_group =
    with_store_dir (fun dir ->
        let cfg = { Store.default_config with merge_threshold = 0 } in
        let st = match Store.open_store ~config:cfg ~init:g dir with
          | Ok st -> st
          | Error e -> failwith (Store.open_error_to_string e)
        in
        let rng = Gf.Rng.create 5 in
        let t, () =
          time_once (fun () ->
              for i = 1 to ops do
                mutate st rng;
                if i mod 16 = 0 then ignore (Store.sync st)
              done;
              ignore (Store.sync st))
        in
        Store.close st;
        t)
  in
  Printf.printf "%d mutations: fsync-every-append %s ops/s, group-commit(16) %s ops/s (%.1fx)\n"
    ops
    (fmt_count (int_of_float (float_of_int ops /. Float.max t_every 1e-9)))
    (fmt_count (int_of_float (float_of_int ops /. Float.max t_group 1e-9)))
    (t_every /. Float.max t_group 1e-9);
  (* Merge and checkpoint cost at a realistic overlay size. *)
  with_store_dir (fun dir ->
      let cfg = { Store.default_config with merge_threshold = 0 } in
      let st = match Store.open_store ~config:cfg ~init:g dir with
        | Ok st -> st
        | Error e -> failwith (Store.open_error_to_string e)
      in
      let rng = Gf.Rng.create 6 in
      for _ = 1 to ops do mutate st rng done;
      ignore (Store.sync st);
      let pend = Store.pending st in
      let t_merge, _ = time_once (fun () -> Store.merge_now st) in
      Printf.printf "merge: %s pending ops folded into a %s-edge CSR in %.3fs\n"
        (fmt_count pend)
        (fmt_count (Gf.Graph.num_edges (Store.graph st)))
        t_merge;
      let rng = Gf.Rng.create 7 in
      for _ = 1 to 64 do mutate st rng done;
      ignore (Store.sync st);
      let t_ckpt, r = time_once (fun () -> Store.checkpoint st) in
      (match r with
      | Ok v -> Printf.printf "checkpoint: snapshot v%d + rotate + prune in %.3fs\n" v t_ckpt
      | Error e -> Printf.printf "checkpoint FAILED: %s\n" (Store.mut_error_to_string e));
      (* Read-path parity: the same query against the plain CSR and
         against the store's merged CSR with an empty delta. The store
         read path is a pointer load — the criterion is within-noise. *)
      let q = Gf.Patterns.q 1 in
      let db_plain = Gf.Db.create g in
      let db_store = Gf.Db.create (Store.graph st) in
      let t_plain, c1 = time_warm (fun () -> Gf.Db.count db_plain q) in
      let t_store, _c2 = time_warm (fun () -> Gf.Db.count db_store q) in
      Printf.printf
        "read parity (triangles, %s matches): plain CSR %.3fs, store CSR %.3fs (%+.1f%%)\n"
        (fmt_count c1) t_plain t_store
        ((t_store -. t_plain) /. Float.max t_plain 1e-9 *. 100.0);
      Store.close st)

(* ---- Plan cache: amortization of planning cost + feedback convergence ---- *)

let plan_cache_bench () =
  header "plan cache (planning amortization, feedback-driven replanning)";
  let g = dataset Gf.Generators.Amazon in
  let cat = catalog g in
  (* 1. Amortization: per-call optimize cost, cold DP vs cached lookup.
     The win must grow with pattern size: the DP is exponential in the
     vertex count, the cache hit is a linear skeleton instantiation. *)
  subheader "optimize cost per call: cold DP vs cache hit";
  let per_call n f =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to n do ignore (f ()) done;
    (Unix.gettimeofday () -. t0) /. float_of_int n
  in
  List.iter
    (fun i ->
      let q = Gf.Patterns.q i in
      ignore (Gf.Planner.plan cat q);
      (* catalogue warm *)
      let cold = per_call 20 (fun () -> Gf.Planner.plan cat q) in
      let cache = Gf.Plan_cache.create () in
      let opts = Gf.Planner.default_opts in
      ignore (Gf.Plan_cache.lookup cache ~opts ~graph_version:0 cat q);
      let hit =
        per_call 200 (fun () -> Gf.Plan_cache.lookup cache ~opts ~graph_version:0 cat q)
      in
      let s = Gf.Plan_cache.stats cache in
      Printf.printf "Q%-2d cold %9.1fus  hit %7.1fus  speedup %7.1fx  (%d hits)\n" i
        (cold *. 1e6) (hit *. 1e6) (cold /. Float.max hit 1e-9) s.Gf.Plan_cache.hits)
    [ 3; 7; 10; 14 ];
  (* 2. Convergence: a deliberately weak catalogue (h=2, tiny sample)
     mis-costs several benchmark queries. Profiled executions feed actuals
     back into the template's corrections; when drift crosses the
     threshold the next lookup replans under the corrected model. Queries
     whose plan signature changes — and whose runtime improves — are the
     feedback win. *)
  subheader "feedback convergence under a weak catalogue (h=2, z=30)";
  let cache = Gf.Plan_cache.create ~drift_threshold:1.5 ~feedback_warmup:8 () in
  let db = Gf.Db.create ~h:2 ~z:30 ~plan_cache:cache g in
  List.iter
    (fun i ->
      let q = Gf.Patterns.q i in
      let round () = (Gf.Db.explain_analyze db q).Gf.Db.plan in
      let p0 = round () in
      let rec settle n p = if n = 0 then p else settle (n - 1) (round ()) in
      let pn = settle 4 p0 in
      let sig0 = Gf.Plan.signature p0 and sign = Gf.Plan.signature pn in
      if sig0 <> sign then begin
        (* Plan quality, measured on equal terms: warm plain executions of
           the pre- and post-feedback plans (no profiling overhead). *)
        let t0, _ = time_warm (fun () -> Gf.Exec.run g p0) in
        let tn, _ = time_warm (fun () -> Gf.Exec.run g pn) in
        Printf.printf "Q%-2d SWITCHED %s -> %s\n     %.4fs -> %.4fs (%+.1f%%)\n" i sig0
          sign t0 tn
          ((tn -. t0) /. Float.max t0 1e-9 *. 100.0)
      end
      else Printf.printf "Q%-2d kept    %s\n" i sig0)
    [ 2; 3; 4; 5; 6; 7; 8 ];
  let s = Gf.Plan_cache.stats cache in
  Printf.printf
    "cache: %d entries, %d hits, %d misses, %d replans, %d feedback folds\n"
    s.Gf.Plan_cache.entries s.Gf.Plan_cache.hits s.Gf.Plan_cache.misses
    s.Gf.Plan_cache.replans s.Gf.Plan_cache.feedbacks

(* ------------------------------------------------------------------ *)
(* Cluster: sharded serving overhead, straggler hedging.               *)
(* ------------------------------------------------------------------ *)

let cluster () =
  header
    "Cluster: coordinator + workers vs single process (NOTE: container has 1 physical core)";
  let module Service = Gf_server.Service in
  let module Server = Gf_server.Server in
  let module Worker = Gf_cluster.Worker in
  let module Topology = Gf_cluster.Topology in
  let module Coordinator = Gf_cluster.Coordinator in
  let g = dataset_at (Gf.Generators.Amazon, scale *. 0.5) in
  let db = Gf.Db.create g in
  let dir = Filename.temp_file "gfclu-bench" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let start_worker ?slow_s name =
    let svc = Service.create (Gf.Db.create g) in
    let w =
      Worker.create ?slow_s ~node:name ~n:(Gf.Graph.num_vertices g)
        ~m:(Gf.Graph.num_edges g) svc
    in
    let path = Filename.concat dir (name ^ ".sock") in
    let ready_m = Mutex.create () and ready_cv = Condition.create () in
    let ready = ref false in
    let th =
      Thread.create
        (fun () ->
          Server.serve ~hook:(Worker.hook w)
            ~on_ready:(fun _ ->
              Mutex.lock ready_m;
              ready := true;
              Condition.broadcast ready_cv;
              Mutex.unlock ready_m)
            svc (Server.Unix_path path))
        ()
    in
    Mutex.lock ready_m;
    while not !ready do
      Condition.wait ready_cv ready_m
    done;
    Mutex.unlock ready_m;
    (path, th)
  in
  let stop_worker (path, th) =
    (try
       let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
       Unix.connect fd (Unix.ADDR_UNIX path);
       let oc = Unix.out_channel_of_descr fd in
       output_string oc "shutdown\n";
       flush oc;
       (try ignore (input_line (Unix.in_channel_of_descr fd)) with _ -> ());
       Unix.close fd
     with Unix.Unix_error _ | Sys_error _ -> ());
    Thread.join th
  in
  let topo_of paths =
    let k = Array.length paths in
    let lines =
      List.init k (fun i ->
          Printf.sprintf "shard %d unix:%s unix:%s" i paths.(i) paths.((i + 1) mod k))
    in
    match Topology.parse (String.concat "\n" lines ^ "\n") with
    | Ok t -> t
    | Error m -> failwith m
  in
  let coord_config ~hedge =
    {
      Coordinator.default_config with
      Coordinator.hedge_after_s = hedge;
      probe_interval_s = 0.5;
      retries = 2;
    }
  in
  let req text =
    match Gf_server.Wire.parse_request ("run q=" ^ text) with
    | Ok (Gf_server.Wire.Run r) -> r
    | _ -> failwith "bench request"
  in
  (* Part 1: per-query latency, single process vs sharded topologies. On
     one core sharding buys no speedup — the delta IS the wire + fan-out
     overhead, which is the honest number to watch. *)
  let queries = [ ("Q1", Gf.Patterns.q 1); ("Q2", Gf.Patterns.q 2); ("Q14", Gf.Patterns.q 14) ] in
  Printf.printf "%-6s %12s %12s %12s\n" "query" "single" "1x2" "1x4";
  let topo_sizes = [ 2; 4 ] in
  List.iter
    (fun (label, q) ->
      let t_single, _ = time_warm (fun () -> Gf.Db.run_gov db q) in
      let t_topo =
        List.map
          (fun k ->
            let ws = Array.init k (fun i -> start_worker (Printf.sprintf "%s-w%d" label i)) in
            let coord =
              Coordinator.create ~config:(coord_config ~hedge:None)
                (topo_of (Array.map fst ws))
            in
            let run () =
              let r = Coordinator.run coord ~text:label (req label) in
              if r.Coordinator.r_outcome <> "completed" then failwith "bench run degraded"
            in
            run () (* warm connections *);
            let t, () = time_warm run in
            Coordinator.stop coord;
            Array.iter stop_worker ws;
            t)
          topo_sizes
      in
      Printf.printf "%-6s %11.3fs %11.3fs %11.3fs\n" label t_single (List.nth t_topo 0)
        (List.nth t_topo 1))
    queries;
  (* Part 2: one straggling worker (50 ms stall per shard request) in a
     1x4 topology. Hedging re-issues the stalled shard to its replica
     after 20 ms; p99 should collapse toward the healthy path. *)
  subheader "throughput and p99 under one slow worker (1x4, Q1), hedging off vs on";
  let run_batch ~hedge n =
    let ws =
      Array.init 4 (fun i ->
          if i = 0 then start_worker ~slow_s:0.05 "slow-w0"
          else start_worker (Printf.sprintf "str-w%d" i))
    in
    let coord = Coordinator.create ~config:(coord_config ~hedge) (topo_of (Array.map fst ws)) in
    let lat = Array.make n 0.0 in
    let r0 = Coordinator.run coord ~text:"Q1" (req "Q1") in
    if r0.Coordinator.r_outcome <> "completed" then failwith "bench straggler run degraded";
    let t0 = Unix.gettimeofday () in
    for i = 0 to n - 1 do
      let s = Unix.gettimeofday () in
      ignore (Coordinator.run coord ~text:"Q1" (req "Q1"));
      lat.(i) <- Unix.gettimeofday () -. s
    done;
    let wall = Unix.gettimeofday () -. t0 in
    let hedges =
      match Gf_cluster.Proto.json_int (Coordinator.stats_json coord) "hedges" with
      | Some h -> h
      | None -> 0
    in
    Coordinator.stop coord;
    Array.iter stop_worker ws;
    Array.sort compare lat;
    let pct p = lat.(min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1)) in
    (float_of_int n /. wall, pct 0.50, pct 0.99, hedges)
  in
  let n = 40 in
  let thr_off, p50_off, p99_off, _ = run_batch ~hedge:None n in
  let thr_on, p50_on, p99_on, hedges = run_batch ~hedge:(Some 0.02) n in
  Printf.printf "hedge off: %6.1f req/s  p50 %6.1fms  p99 %6.1fms\n" thr_off (p50_off *. 1e3)
    (p99_off *. 1e3);
  Printf.printf "hedge on:  %6.1f req/s  p50 %6.1fms  p99 %6.1fms  (%d hedges fired)\n" thr_on
    (p50_on *. 1e3) (p99_on *. 1e3) hedges;
  Printf.printf "p99 improvement from hedging: %.1fx\n" (p99_off /. Float.max p99_on 1e-9)

let sections =
  [
    ("table3", table3);
    ("table4", table4);
    ("table5", table5);
    ("table6", table6);
    ("table7", table7);
    ("figure7", figure7);
    ("figure8", figure8);
    ("figure9", figure9);
    ("table9", table9);
    ("figure10", figure10);
    ("figure11", figure11);
    ("governor", governor);
    ("resilience", resilience);
    ("observability", observability);
    ("tracing", tracing);
    ("wire_obs", wire_obs);
    ("table10", table10);
    ("table11", table11);
    ("table12", table12);
    ("table13", table13);
    ("ablation_cache", ablation_cache_consciousness);
    ("ablation_projection", ablation_projection_constraint);
    ("ablation_weights", ablation_hashjoin_weights);
    ("ablation_estimators", ablation_estimators);
    ("ablation_intersection", ablation_intersection_kernel);
    ("ablation_factorized", ablation_factorized_count);
    ("storage", storage);
    ("durability", durability);
    ("plan_cache", plan_cache_bench);
    ("cluster", cluster);
    ("bechamel", bechamel_suite);
  ]

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let rec parse = function
    | "--list" :: _ ->
        List.iter (fun (n, _) -> print_endline n) sections;
        exit 0
    | "--only" :: spec :: rest ->
        let wanted = String.split_on_char ',' spec in
        let chosen = List.filter (fun (n, _) -> List.mem n wanted) sections in
        if chosen = [] then (prerr_endline "no matching section"; exit 1);
        (chosen, rest) |> fun (c, _) -> c
    | _ :: rest -> parse rest
    | [] -> sections
  in
  let chosen = parse args in
  Printf.printf "bench scale: %.2f (set GF_BENCH_SCALE to change)\n" scale;
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun (name, f) ->
      try f ()
      with e ->
        Printf.printf "[%s FAILED: %s]\n" name (Printexc.to_string e))
    chosen;
  Printf.printf "\ntotal bench time: %.1fs\n" (Unix.gettimeofday () -. t0)
